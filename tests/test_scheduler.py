"""Tests for Herald's scheduler and the greedy baseline."""

import pytest

from repro.core.greedy import GreedyScheduler
from repro.core.scheduler import HeraldScheduler
from repro.exceptions import SchedulingError
from repro.units import mib


class TestHeraldSchedulerConfiguration:
    def test_invalid_metric_rejected(self, cost_model):
        with pytest.raises(SchedulingError):
            HeraldScheduler(cost_model, metric="throughput")

    def test_invalid_ordering_rejected(self, cost_model):
        with pytest.raises(SchedulingError):
            HeraldScheduler(cost_model, ordering="random")

    def test_invalid_load_balance_factor_rejected(self, cost_model):
        with pytest.raises(SchedulingError):
            HeraldScheduler(cost_model, load_balance_factor=0.5)

    def test_empty_sub_accelerator_list_rejected(self, cost_model, small_workload):
        scheduler = HeraldScheduler(cost_model)
        with pytest.raises(SchedulingError):
            scheduler.schedule(small_workload, [])


class TestHeraldSchedulerBehaviour:
    def test_schedule_is_complete_and_valid(self, cost_model, small_workload,
                                             tiny_sub_accelerators):
        scheduler = HeraldScheduler(cost_model)
        schedule = scheduler.schedule(small_workload, tiny_sub_accelerators)
        assert len(schedule) == small_workload.total_layers
        # validate() already ran inside schedule(); run it again explicitly.
        schedule.validate({i.instance_id: i.num_layers for i in small_workload.instances()})

    def test_every_sub_accelerator_is_used_on_heterogeneous_mix(
            self, cost_model, small_workload, tiny_sub_accelerators):
        schedule = HeraldScheduler(cost_model).schedule(small_workload,
                                                        tiny_sub_accelerators)
        counts = schedule.layer_counts()
        assert all(count > 0 for count in counts.values())

    def test_single_sub_accelerator_is_sequential(self, cost_model, small_workload,
                                                  tiny_sub_accelerators):
        schedule = HeraldScheduler(cost_model).schedule(small_workload,
                                                        (tiny_sub_accelerators[0],))
        timeline = schedule.entries_for(tiny_sub_accelerators[0].name)
        assert schedule.makespan_cycles == pytest.approx(
            sum(entry.duration_cycles for entry in timeline))

    def test_post_processing_never_hurts_makespan(self, cost_model, small_workload,
                                                  tiny_sub_accelerators):
        with_pp = HeraldScheduler(cost_model, enable_post_processing=True)
        without_pp = HeraldScheduler(cost_model, enable_post_processing=False)
        makespan_pp = with_pp.schedule(small_workload, tiny_sub_accelerators).makespan_cycles
        makespan_raw = without_pp.schedule(small_workload,
                                           tiny_sub_accelerators).makespan_cycles
        assert makespan_pp <= makespan_raw + 1e-6

    def test_load_balancing_reduces_imbalance(self, cost_model, small_workload,
                                              tiny_sub_accelerators):
        balanced = HeraldScheduler(cost_model, load_balance_factor=1.1).schedule(
            small_workload, tiny_sub_accelerators)
        unbalanced = HeraldScheduler(cost_model, load_balance_factor=None).schedule(
            small_workload, tiny_sub_accelerators)
        assert balanced.load_imbalance() <= unbalanced.load_imbalance() + 1e-6

    def test_depth_and_breadth_orderings_both_valid(self, cost_model, small_workload,
                                                    tiny_sub_accelerators):
        for ordering in ("breadth", "depth"):
            scheduler = HeraldScheduler(cost_model, ordering=ordering)
            schedule = scheduler.schedule(small_workload, tiny_sub_accelerators)
            assert len(schedule) == small_workload.total_layers

    def test_latency_metric_schedule_is_no_slower_than_energy_metric(
            self, cost_model, small_workload, tiny_sub_accelerators):
        latency_first = HeraldScheduler(cost_model, metric="latency").schedule(
            small_workload, tiny_sub_accelerators)
        energy_first = HeraldScheduler(cost_model, metric="energy").schedule(
            small_workload, tiny_sub_accelerators)
        assert latency_first.makespan_cycles <= energy_first.makespan_cycles * 1.2

    def test_memory_limit_violations_are_counted(self, cost_model, small_workload,
                                                 tiny_sub_accelerators):
        scheduler = HeraldScheduler(cost_model, memory_limit_bytes=1024)
        scheduler.schedule(small_workload, tiny_sub_accelerators)
        assert scheduler.last_memory_violations > 0

    def test_generous_memory_limit_has_no_violations(self, cost_model, small_workload,
                                                     tiny_sub_accelerators):
        scheduler = HeraldScheduler(cost_model, memory_limit_bytes=mib(1024))
        scheduler.schedule(small_workload, tiny_sub_accelerators)
        assert scheduler.last_memory_violations == 0

    def test_deterministic_output(self, cost_model, small_workload, tiny_sub_accelerators):
        first = HeraldScheduler(cost_model).schedule(small_workload, tiny_sub_accelerators)
        second = HeraldScheduler(cost_model).schedule(small_workload, tiny_sub_accelerators)
        assert [(e.instance_id, e.layer.name, e.sub_accelerator, e.start_cycle)
                for e in first.entries] == \
               [(e.instance_id, e.layer.name, e.sub_accelerator, e.start_cycle)
                for e in second.entries]

    def test_layers_follow_dataflow_preference_without_load_pressure(
            self, cost_model, tiny_sub_accelerators, channel_heavy_model):
        # A purely channel-heavy model should land (almost) entirely on the
        # NVDLA-style sub-accelerator when load balancing is disabled.
        from repro.workloads.spec import WorkloadSpec
        workload = WorkloadSpec.from_models("channel-only", [channel_heavy_model], 1)
        schedule = HeraldScheduler(cost_model, load_balance_factor=None).schedule(
            workload, tiny_sub_accelerators)
        counts = schedule.layer_counts()
        assert counts["acc0-nvdla"] == len(channel_heavy_model)


class TestGreedyScheduler:
    def test_invalid_metric_rejected(self, cost_model):
        with pytest.raises(SchedulingError):
            GreedyScheduler(cost_model, metric="bogus")

    def test_empty_sub_accelerators_rejected(self, cost_model, small_workload):
        with pytest.raises(SchedulingError):
            GreedyScheduler(cost_model).schedule(small_workload, [])

    def test_schedule_is_complete_and_valid(self, cost_model, small_workload,
                                            tiny_sub_accelerators):
        schedule = GreedyScheduler(cost_model).schedule(small_workload,
                                                        tiny_sub_accelerators)
        assert len(schedule) == small_workload.total_layers

    def test_herald_never_worse_than_greedy_on_edp(self, cost_model, small_workload,
                                                   tiny_sub_accelerators):
        herald = HeraldScheduler(cost_model).schedule(small_workload,
                                                      tiny_sub_accelerators)
        greedy = GreedyScheduler(cost_model).schedule(small_workload,
                                                      tiny_sub_accelerators)
        assert herald.edp <= greedy.edp * 1.05

    def test_herald_reduces_makespan_vs_greedy(self, cost_model, small_workload,
                                               tiny_sub_accelerators):
        herald = HeraldScheduler(cost_model).schedule(small_workload,
                                                      tiny_sub_accelerators)
        greedy = GreedyScheduler(cost_model).schedule(small_workload,
                                                      tiny_sub_accelerators)
        assert herald.makespan_cycles <= greedy.makespan_cycles * 1.05
