"""Tests for the experiment runner, reports, and CLI <-> spec equivalence.

The load-bearing contract of the experiment layer: a flag invocation and an
experiment file carrying the mapping those flags compile into are *the same
program*.  Each sub-command is pinned by running both paths and comparing the
stdout and the canonical report byte for byte (only wall-clock timing lines
and the run-varying ``timing`` / ``environment`` report sections may differ).

The golden corpus under ``tests/golden/experiments/`` then freezes one
canonical report per experiment kind; regenerate (after an intentional
behaviour change) with::

    PYTHONPATH=src python tests/golden_scheduler.py --write-experiments
"""

import json
import re

import pytest

import repro
from repro.cli import main
from repro.exceptions import SpecError
from repro.experiment import (
    BaselineDelta,
    canonical_report,
    compare_reports,
    load_report,
    metric_direction,
    report_from_bench,
    write_report,
)

from golden_scheduler import (
    experiment_report_file,
    experiment_spec_files,
    run_experiment_report,
)


_ELAPSED = re.compile(r"\b\d+(?:\.\d+)? s\b")


def _strip_timing_lines(output: str) -> str:
    """Drop or mask the wall-clock fragments that legitimately vary per run:
    the scheduler's ``scheduling time:`` line and the elapsed seconds the DSE
    header embeds inline (``... (228 points, 0.1 s)``)."""
    lines = (line for line in output.splitlines()
             if not line.startswith("scheduling time:"))
    return "\n".join(_ELAPSED.sub("<elapsed>", line) for line in lines)


def _write_spec(tmp_path, mapping) -> str:
    path = tmp_path / "experiment.json"
    path.write_text(json.dumps(mapping) + "\n", encoding="utf-8")
    return str(path)


def _canonical(path: str):
    report = load_report(path)
    assert report["herald_version"] == repro.__version__
    return canonical_report(report)


class TestCliSpecEquivalence:
    """`herald <cmd> --flags` == `herald run file.json` for the same mapping."""

    def _run_both(self, tmp_path, capsys, flag_argv, mapping):
        flag_report = str(tmp_path / "flags.report.json")
        file_report = str(tmp_path / "file.report.json")
        assert main(flag_argv + ["--report", flag_report]) == 0
        flag_output = capsys.readouterr().out
        spec_file = _write_spec(tmp_path, mapping)
        assert main(["run", spec_file, "--report", file_report]) == 0
        file_output = capsys.readouterr().out
        assert _strip_timing_lines(flag_output) == _strip_timing_lines(file_output)
        assert _canonical(flag_report) == _canonical(file_report)
        return _canonical(flag_report)

    def test_schedule(self, tmp_path, capsys):
        report = self._run_both(
            tmp_path, capsys,
            ["schedule", "--workload", "mlperf", "--design", "rda"],
            {"kind": "schedule", "workload": "mlperf", "chip": "edge",
             "design": "rda", "metric": "edp"})
        assert report["kind"] == "schedule"
        assert set(report["metrics"]) == {"latency_s", "energy_mj", "edp_js",
                                          "load_imbalance"}

    def test_dse(self, tmp_path, capsys):
        report = self._run_both(
            tmp_path, capsys,
            ["dse", "--workload", "arvr-a", "--pe-steps", "4",
             "--bw-steps", "1"],
            {"kind": "dse", "workload": "arvr-a", "chip": "edge",
             "search": {"pe_steps": 4, "bw_steps": 1}, "exec": {"jobs": 1}})
        assert report["details"]["best_designs"]
        assert any(name.endswith("_edp_js") for name in report["metrics"])

    def test_serve(self, tmp_path, capsys):
        report = self._run_both(
            tmp_path, capsys,
            ["serve", "--design", "fda-nvdla", "--frames", "2",
             "--sustained-probes", "3"],
            {"kind": "serve", "workload": "arvr-a", "chip": "edge",
             "design": "fda-nvdla", "metric": "edp",
             "streaming": {"frames": 2, "fps_scale": 1.0, "jitter_ms": 0.0,
                           "seed": 0},
             "sustained": {"enabled": True, "lo": 1.0 / 256.0, "hi": 8.0,
                           "probes": 3, "tolerance": 0.0},
             "optimize_sla": False})
        assert "sustained_fps_factor" in report["metrics"]

    def test_fleet(self, tmp_path, capsys):
        report = self._run_both(
            tmp_path, capsys,
            ["fleet", "--design", "rda", "--chips", "2", "--policy",
             "round-robin", "--frames", "2", "--fps-scale", "2.0"],
            {"kind": "fleet", "workload": "arvr-a", "chip": "edge",
             "design": "rda", "metric": "edp",
             "streaming": {"frames": 2, "fps_scale": 2.0, "jitter_ms": 0.0,
                           "seed": 0},
             "fleet": {"chips": 2, "policy": "round-robin"},
             "min_chips": {"enabled": False, "max_chips": 8},
             "exec": {"jobs": 1}})
        assert report["details"]["policy"] == "round-robin"

    def test_closed_loop_with_fault(self, tmp_path, capsys):
        report = self._run_both(
            tmp_path, capsys,
            ["fleet", "--design", "rda", "--chips", "2", "--frames", "2",
             "--fps-scale", "2.0", "--online", "--fault", "die:0@0.02"],
            {"kind": "closed-loop", "workload": "arvr-a", "chip": "edge",
             "design": "rda", "metric": "edp",
             "streaming": {"frames": 2, "fps_scale": 2.0, "jitter_ms": 0.0,
                           "seed": 0},
             "fleet": {"chips": 2, "policy": "earliest-completion"},
             "min_chips": {"enabled": False, "max_chips": 8},
             "exec": {"jobs": 1},
             "faults": ["die:0@0.02"]})
        assert "redispatched_frames" in report["metrics"]


class TestGoldenExperimentCorpus:
    """Every corpus spec reproduces its frozen report bit for bit."""

    @pytest.mark.parametrize("spec_path", experiment_spec_files(),
                             ids=lambda path: path.rsplit("/", 1)[-1])
    def test_frozen_report(self, spec_path):
        with open(experiment_report_file(spec_path), "r",
                  encoding="utf-8") as handle:
            frozen = json.load(handle)
        current = run_experiment_report(spec_path)
        # The version stamp tracks releases, not behaviour: normalise it so
        # a version bump alone never invalidates the corpus.
        current.pop("herald_version"), frozen.pop("herald_version")
        assert current == frozen

    def test_corpus_spans_every_kind(self):
        kinds = set()
        for spec_path in experiment_spec_files():
            with open(experiment_report_file(spec_path), "r",
                      encoding="utf-8") as handle:
                kinds.add(json.load(handle)["kind"])
        assert kinds == {"schedule", "dse", "serve", "fleet", "closed-loop"}


class TestReports:
    def test_write_load_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "r.json")
        assert main(["schedule", "--design", "rda", "--report", path]) == 0
        capsys.readouterr()
        report = load_report(path)
        assert report["schema"] == "herald-report/1"
        assert report["herald_version"] == repro.__version__
        assert report["environment"]["python"]
        assert "scheduling_time_s" in report["timing"]
        assert "scheduling_time_s" not in report["metrics"]

    def test_load_rejects_non_report(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "other/9"}', encoding="utf-8")
        with pytest.raises(SpecError, match="not a herald-report/1 report"):
            load_report(str(path))

    def test_metric_direction(self):
        assert metric_direction("p99_latency_s") == "lower"
        assert metric_direction("deadline_miss_rate") == "lower"
        assert metric_direction("sustained_fps_factor") == "higher"
        assert metric_direction("chip_utilisation") == "higher"

    def test_delta_regression_respects_direction(self):
        worse_latency = BaselineDelta("p99_latency_s", 1.0, 1.2, "lower")
        better_latency = BaselineDelta("p99_latency_s", 1.0, 0.8, "lower")
        worse_fps = BaselineDelta("sustained_fps_factor", 2.0, 1.5, "higher")
        assert worse_latency.regressed()
        assert not better_latency.regressed()
        assert worse_fps.regressed()
        assert not worse_latency.regressed(tolerance=0.5)

    def test_compare_reports_missing_and_added(self):
        current = {"metrics": {"a": 1.0, "c": 3.0}}
        baseline = {"metrics": {"a": 1.0, "b": 2.0}}
        result = compare_reports(current, baseline)
        assert result.missing == ["b"]
        assert result.added == ["c"]
        assert not result.ok  # a vanished baseline metric fails the gate

    def test_report_from_bench_flattens_numeric_leaves(self):
        bench = {
            "version": 3, "mode": "quick", "python": "3.x",
            "cost_model": {"cold_speedup": 2.0, "ok": True},
            "series": {"values": [1.0, 2.5]},
        }
        report = report_from_bench(bench)
        assert report["kind"] == "bench"
        assert report["metrics"] == {
            "cost_model.cold_speedup": 2.0,
            "series.values[0]": 1.0,
            "series.values[1]": 2.5,
        }


class TestRunCommand:
    def test_baseline_regression_exit_code(self, tmp_path, capsys):
        spec_file = _write_spec(tmp_path, {"kind": "schedule",
                                           "design": "rda"})
        report_path = str(tmp_path / "run.report.json")
        assert main(["run", spec_file, "--report", report_path]) == 0
        capsys.readouterr()

        # Identical baseline: clean pass.
        assert main(["run", spec_file, "--baseline", report_path]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

        # A baseline claiming better latency: this run regresses -> exit 1.
        baseline = load_report(report_path)
        baseline["metrics"]["latency_s"] *= 0.5
        better_path = str(tmp_path / "better.report.json")
        write_report(baseline, better_path)
        assert main(["run", spec_file, "--baseline", better_path]) == 1
        output = capsys.readouterr().out
        assert "REGRESSED" in output and "latency_s" in output

        # A generous tolerance absorbs the same delta.
        assert main(["run", spec_file, "--baseline", better_path,
                     "--tolerance", "2.0"]) == 0
        capsys.readouterr()

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.yaml")]) == 2
        assert "cannot read experiment file" in capsys.readouterr().err

    def test_malformed_spec_is_exit_2(self, tmp_path, capsys):
        spec_file = _write_spec(tmp_path, {"kind": "schedule", "frames": 2})
        assert main(["run", spec_file]) == 2
        assert "frames: unknown key" in capsys.readouterr().err

    def test_yaml_experiment_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "exp.yaml"
        path.write_text("kind: schedule\ndesign: rda\nworkload: mlperf\n",
                        encoding="utf-8")
        assert main(["run", str(path)]) == 0
        assert "rda-edge" in capsys.readouterr().out


class TestReportDiffCommand:
    def test_identical_reports_pass(self, tmp_path, capsys):
        path = str(tmp_path / "r.json")
        assert main(["schedule", "--design", "rda", "--report", path]) == 0
        capsys.readouterr()
        assert main(["report-diff", path, path]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regressed_report_fails(self, tmp_path, capsys):
        path = str(tmp_path / "r.json")
        assert main(["schedule", "--design", "rda", "--report", path]) == 0
        capsys.readouterr()
        baseline = load_report(path)
        baseline["metrics"]["energy_mj"] *= 0.5
        baseline_path = str(tmp_path / "b.json")
        write_report(baseline, baseline_path)
        assert main(["report-diff", path, baseline_path]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_mode_diffs_hot_path_baselines(self, tmp_path, capsys):
        bench = {"version": 3, "mode": "quick", "python": "3.x",
                 "cost_model": {"cold_eval_s": 1.0}}
        current_path = tmp_path / "bench_current.json"
        current_path.write_text(json.dumps(bench), encoding="utf-8")
        slower = dict(bench, cost_model={"cold_eval_s": 2.0})
        slower_path = tmp_path / "bench_slower.json"
        slower_path.write_text(json.dumps(slower), encoding="utf-8")

        assert main(["report-diff", str(current_path), str(current_path),
                     "--bench"]) == 0
        capsys.readouterr()
        assert main(["report-diff", str(slower_path), str(current_path),
                     "--bench"]) == 1
        assert "cost_model.cold_eval_s" in capsys.readouterr().out

    def test_missing_report_is_exit_2(self, tmp_path, capsys):
        assert main(["report-diff", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 2
        assert "cannot read report" in capsys.readouterr().err


class TestDescribeRegistries:
    def test_describe_lists_new_registries(self, capsys):
        assert main(["describe"]) == 0
        output = capsys.readouterr().out
        for expected in ("earliest-completion", "poisson", "die:CHIP@T",
                         "closed-loop"):
            assert expected in output
