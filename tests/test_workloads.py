"""Tests for workload specifications and the Table II suites."""

import pytest

from repro.exceptions import WorkloadError
from repro.models.graph import ModelGraph
from repro.models.layer import fc
from repro.workloads.spec import ModelInstance, WorkloadSpec
from repro.workloads.suites import (
    WORKLOAD_SUITES,
    arvr_a,
    arvr_b,
    available_workloads,
    mlperf,
    single_model,
    workload_by_name,
)


class TestWorkloadSpec:
    def test_requires_entries(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="empty", entries=[])

    def test_rejects_zero_batches(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="bad", entries=[("resnet50", 0)])

    def test_instances_one_per_batch(self):
        spec = WorkloadSpec(name="w", entries=[("mobilenet_v1", 3)])
        instances = spec.instances()
        assert len(instances) == 3
        assert {i.instance_id for i in instances} == {
            "mobilenet_v1#0", "mobilenet_v1#1", "mobilenet_v1#2"}

    def test_instances_share_model_graph(self):
        spec = WorkloadSpec(name="w", entries=[("mobilenet_v1", 2)])
        a, b = spec.instances()
        assert a.model is b.model

    def test_total_layers_counts_batches(self):
        spec = WorkloadSpec(name="w", entries=[("mobilenet_v1", 2)])
        assert spec.total_layers == 2 * len(spec.model_graph("mobilenet_v1"))

    def test_unique_layers_ignores_batches(self):
        spec = WorkloadSpec(name="w", entries=[("mobilenet_v1", 4)])
        assert spec.unique_layers == len(spec.model_graph("mobilenet_v1"))

    def test_total_macs_positive(self):
        assert WorkloadSpec(name="w", entries=[("mobilenet_v1", 1)]).total_macs > 0

    def test_with_batches_scales_every_model(self):
        spec = mlperf(1).with_batches(8)
        assert all(batches == 8 for _, batches in spec.entries)

    def test_all_layers_matches_total(self):
        spec = WorkloadSpec(name="w", entries=[("mobilenet_v1", 2)])
        assert len(spec.all_layers()) == spec.total_layers

    def test_heterogeneity_statistics(self):
        stats = WorkloadSpec(name="w", entries=[("mobilenet_v1", 1)]).heterogeneity()
        assert stats["min"] <= stats["max"]

    def test_describe_mentions_models(self):
        assert "mobilenet_v1" in WorkloadSpec(
            name="w", entries=[("mobilenet_v1", 1)]).describe()

    def test_from_models_with_custom_graphs(self):
        graph = ModelGraph.from_layers("custom", [fc("a", k=8, c=8), fc("b", k=8, c=8)])
        spec = WorkloadSpec.from_models("custom-wl", [graph], batches=2)
        assert spec.total_layers == 4
        assert spec.model_graph("custom") is graph

    def test_from_models_batch_length_mismatch(self):
        graph = ModelGraph.from_layers("custom", [fc("a", k=8, c=8)])
        with pytest.raises(WorkloadError):
            WorkloadSpec.from_models("bad", [graph], batches=[1, 2])

    def test_model_instance_properties(self):
        graph = ModelGraph.from_layers("custom", [fc("a", k=8, c=8), fc("b", k=8, c=8)])
        instance = ModelInstance("custom#0", graph)
        assert instance.model_name == "custom"
        assert instance.num_layers == 2
        assert [l.name for l in instance.layers_in_dependence_order()] == ["a", "b"]


class TestSuites:
    def test_arvr_a_composition(self):
        spec = arvr_a()
        assert dict(spec.entries) == {"resnet50": 2, "unet": 4, "mobilenet_v2": 4}

    def test_arvr_b_composition(self):
        spec = arvr_b()
        assert dict(spec.entries) == {
            "resnet50": 2, "unet": 2, "mobilenet_v2": 4,
            "brq_handpose": 2, "focal_depthnet": 2,
        }

    def test_mlperf_composition(self):
        spec = mlperf()
        assert set(spec.model_names) == {
            "resnet50", "mobilenet_v1", "ssd_resnet34", "ssd_mobilenet_v1", "gnmt"}
        assert all(batches == 1 for _, batches in spec.entries)

    def test_mlperf_batch_eight(self):
        spec = mlperf(batch_size=8)
        assert all(batches == 8 for _, batches in spec.entries)
        assert spec.name == "mlperf-b8"

    def test_single_model_workload(self):
        spec = single_model("unet", batches=4)
        assert spec.entries == [("unet", 4)]

    def test_workload_by_name(self):
        assert workload_by_name("arvr-a").name == "arvr-a"
        with pytest.raises(KeyError):
            workload_by_name("unknown")

    def test_available_workloads(self):
        assert set(available_workloads()) == set(WORKLOAD_SUITES)

    def test_arvr_b_has_more_heterogeneity_than_arvr_a(self):
        # AR/VR-B adds hand-pose and depth models with extreme channel ratios.
        assert arvr_b().heterogeneity()["max"] > arvr_a().heterogeneity()["max"]

    def test_layer_execution_counts_roughly_match_table_vii(self):
        # Table VII reports 448 / 618 / 181 layer executions; the synthetic
        # reconstruction should land in the same ballpark.
        assert 350 <= arvr_a().total_layers <= 550
        assert 380 <= arvr_b().total_layers <= 750
        assert 150 <= mlperf().total_layers <= 260
