"""Tests for the unit-conversion helpers."""

import pytest

from repro import units


class TestDataSizes:
    def test_mib_converts_to_bytes(self):
        assert units.mib(1) == 1024 * 1024

    def test_mib_accepts_fractions(self):
        assert units.mib(0.5) == 512 * 1024

    def test_gbps_converts_to_bytes_per_second(self):
        assert units.gbps(16) == 16e9

    def test_bytes_per_element_is_two(self):
        assert units.BYTES_PER_ELEMENT == 2


class TestTimeConversions:
    def test_cycles_to_seconds_default_clock(self):
        assert units.cycles_to_seconds(1e9) == pytest.approx(1.0)

    def test_cycles_to_seconds_custom_clock(self):
        assert units.cycles_to_seconds(500, clock_hz=1000) == pytest.approx(0.5)

    def test_seconds_to_cycles_roundtrip(self):
        assert units.seconds_to_cycles(units.cycles_to_seconds(12345)) == pytest.approx(12345)

    def test_bytes_per_cycle(self):
        assert units.bytes_per_cycle(16e9, clock_hz=1e9) == pytest.approx(16.0)


class TestEnergyConversions:
    def test_picojoules_to_millijoules(self):
        assert units.picojoules_to_millijoules(1e9) == pytest.approx(1.0)

    def test_picojoules_to_millijoules_zero(self):
        assert units.picojoules_to_millijoules(0.0) == 0.0


class TestFormatSi:
    def test_zero(self):
        assert units.format_si(0, "s") == "0 s"

    def test_milli(self):
        assert units.format_si(2.5e-3, "s") == "2.5 ms"

    def test_giga(self):
        assert units.format_si(3.2e9, "B") == "3.2 GB"

    def test_unit_scale(self):
        assert units.format_si(7.0, "J") == "7 J"

    def test_tiny_values_use_pico(self):
        assert "p" in units.format_si(3e-13, "J")
