"""Tests for the ``herald`` command-line interface."""

import pytest

from repro.cli import main


class TestDescribe:
    def test_describe_lists_workloads_and_classes(self, capsys):
        assert main(["describe"]) == 0
        output = capsys.readouterr().out
        assert "arvr-a" in output
        assert "edge" in output and "cloud" in output


class TestSchedule:
    def test_schedule_fda_on_edge(self, capsys):
        assert main(["schedule", "--workload", "mlperf", "--chip", "edge",
                     "--design", "fda-nvdla"]) == 0
        output = capsys.readouterr().out
        assert "latency" in output
        assert "fda-nvdla-edge" in output

    def test_schedule_rda(self, capsys):
        assert main(["schedule", "--workload", "mlperf", "--chip", "edge",
                     "--design", "rda"]) == 0
        assert "rda-edge" in capsys.readouterr().out

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--design", "tpu"])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--workload", "bogus"])
