"""Tests for the ``herald`` command-line interface."""

import pytest

from repro.cli import main


class TestDescribe:
    def test_describe_lists_workloads_and_classes(self, capsys):
        assert main(["describe"]) == 0
        output = capsys.readouterr().out
        assert "arvr-a" in output
        assert "edge" in output and "cloud" in output


class TestSchedule:
    def test_schedule_fda_on_edge(self, capsys):
        assert main(["schedule", "--workload", "mlperf", "--chip", "edge",
                     "--design", "fda-nvdla"]) == 0
        output = capsys.readouterr().out
        assert "latency" in output
        assert "fda-nvdla-edge" in output

    def test_schedule_rda(self, capsys):
        assert main(["schedule", "--workload", "mlperf", "--chip", "edge",
                     "--design", "rda"]) == 0
        assert "rda-edge" in capsys.readouterr().out

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--design", "tpu"])


class TestDse:
    def test_dse_serial_with_cache_file(self, tmp_path, capsys):
        cache_file = str(tmp_path / "cache.json")
        args = ["dse", "--workload", "arvr-a", "--chip", "edge",
                "--pe-steps", "4", "--bw-steps", "1", "--cache-file", cache_file]
        assert main(args) == 0
        cold_output = capsys.readouterr().out
        assert "best fda" in cold_output
        assert "cold evaluations" in cold_output

        # Second run starts warm from the cache file: zero cold evaluations,
        # identical best-design lines.
        assert main(args) == 0
        warm_output = capsys.readouterr().out
        assert "cost model: 0 cold evaluations" in warm_output
        cold_best = [line for line in cold_output.splitlines() if "best" in line]
        warm_best = [line for line in warm_output.splitlines() if "best" in line]
        assert cold_best == warm_best

    def test_dse_parallel_jobs_match_serial(self, tmp_path, capsys):
        base = ["dse", "--workload", "arvr-a", "--chip", "edge",
                "--pe-steps", "4", "--bw-steps", "1"]
        assert main(base + ["--jobs", "1"]) == 0
        serial_output = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert "process pool (2 jobs)" in parallel_output
        serial_best = [line for line in serial_output.splitlines() if "best" in line]
        parallel_best = [line for line in parallel_output.splitlines() if "best" in line]
        assert serial_best == parallel_best

class TestServe:
    def test_serve_reports_sla_metrics(self, capsys):
        assert main(["serve", "--workload", "arvr-a", "--chip", "edge",
                     "--design", "fda-nvdla", "--frames", "1",
                     "--skip-sustained"]) == 0
        output = capsys.readouterr().out
        for model in ("resnet50", "unet", "mobilenet_v2"):
            assert model in output
        for column in ("p50", "p95", "p99", "miss", "backlog", "drop"):
            assert column in output

    def test_serve_reports_sustained_fps(self, capsys):
        assert main(["serve", "--workload", "arvr-a", "--chip", "cloud",
                     "--design", "fda-nvdla", "--frames", "1"]) == 0
        assert "sustained FPS" in capsys.readouterr().out

    def test_serve_is_deterministic_under_jitter(self, capsys):
        args = ["serve", "--workload", "arvr-a", "--chip", "edge",
                "--design", "fda-nvdla", "--frames", "1",
                "--jitter-ms", "2.5", "--seed", "11", "--skip-sustained"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_serve_sustained_search_knobs_are_honoured(self, capsys):
        assert main(["serve", "--workload", "arvr-a", "--chip", "cloud",
                     "--design", "fda-nvdla", "--frames", "1",
                     "--sustained-lo", "0.001", "--sustained-hi", "4",
                     "--sustained-probes", "2"]) == 0
        output = capsys.readouterr().out
        assert "sustained FPS" in output
        if "none" not in output:
            # 2 bisection probes + 2 bracket probes at most.
            assert any(f"{count} probes" in output for count in (1, 2, 3, 4))

    def test_serve_rejects_inverted_sustained_brackets(self, capsys):
        assert main(["serve", "--workload", "arvr-a", "--chip", "cloud",
                     "--design", "fda-nvdla", "--frames", "1",
                     "--sustained-lo", "4", "--sustained-hi", "2"]) == 2
        captured = capsys.readouterr()
        assert "--sustained-lo" in captured.err
        # The bracket error must fire before any simulation work (no report
        # output precedes it).
        assert captured.out == ""


class TestFleet:
    def test_fleet_reports_per_chip_rows(self, capsys):
        assert main(["fleet", "--workload", "arvr-a", "--chip", "edge",
                     "--design", "fda-nvdla", "--chips", "2",
                     "--policy", "round-robin", "--frames", "1"]) == 0
        output = capsys.readouterr().out
        assert "Fleet report" in output
        assert "fda-nvdla-edge[0]" in output
        assert "fda-nvdla-edge[1]" in output
        for column in ("util", "p99", "miss", "backlog"):
            assert column in output

    def test_fleet_jobs_match_serial(self, capsys):
        base = ["fleet", "--workload", "arvr-a", "--chip", "edge",
                "--design", "fda-nvdla", "--chips", "2",
                "--policy", "earliest-completion", "--frames", "1"]
        assert main(base + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert "process pool (2 jobs)" in parallel
        serial_rows = [line for line in serial.splitlines()
                       if "Fleet report" in line or "util" in line]
        parallel_rows = [line for line in parallel.splitlines()
                         if "Fleet report" in line or "util" in line]
        assert serial_rows == parallel_rows

    def test_fleet_min_chips_search(self, capsys):
        assert main(["fleet", "--workload", "arvr-a", "--chip", "cloud",
                     "--design", "fda-nvdla", "--chips", "1",
                     "--frames", "1", "--min-chips", "--max-chips", "2"]) == 0
        assert "min chips for SLA" in capsys.readouterr().out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--policy", "coin-flip"])


class TestFleetOnline:
    _BASE = ["fleet", "--workload", "arvr-a", "--chip", "edge",
             "--design", "fda-nvdla", "--chips", "2",
             "--policy", "least-outstanding", "--frames", "1"]

    def test_online_traffic_quickstart(self, capsys):
        assert main(self._BASE + ["--online", "--traffic", "poisson"]) == 0
        output = capsys.readouterr().out
        assert "arvr-a-poisson" in output
        assert "traced frames" in output
        assert "Fleet report" in output
        assert "closed loop:" in output
        assert "re-dispatched" in output and "stolen" in output

    def test_online_faults_and_autoscale_report(self, capsys):
        assert main(self._BASE + [
            "--online", "--fault", "die:1@0.01",
            "--fault", "slow:0@0.001-0.005x2.5", "--autoscale", "5"]) == 0
        output = capsys.readouterr().out
        assert "closed loop:" in output
        assert "autoscale [" in output
        assert "pending, active" in output

    def test_online_run_is_deterministic(self, capsys):
        argv = self._BASE + ["--online", "--traffic", "bursty",
                             "--fault", "die:0@0.01"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_fault_requires_online(self, capsys):
        assert main(self._BASE + ["--fault", "die:0@0.01"]) == 2
        assert "--fault requires --online" in capsys.readouterr().err

    def test_autoscale_requires_online(self, capsys):
        assert main(self._BASE + ["--autoscale", "5"]) == 2
        assert "--autoscale requires --online" in capsys.readouterr().err

    def test_traffic_conflicts_with_jitter(self, capsys):
        assert main(self._BASE + ["--online", "--traffic", "poisson",
                                  "--jitter-ms", "1"]) == 2
        assert "--jitter-ms applies to the periodic trace only" \
            in capsys.readouterr().err

    def test_all_chips_dead_is_a_clean_error(self, capsys):
        assert main(self._BASE + ["--online", "--fault", "die:0@0",
                                  "--fault", "die:1@0"]) == 2
        err = capsys.readouterr().err
        assert "error: cannot dispatch onto an empty fleet" in err

    def test_fault_naming_a_missing_chip_is_a_clean_error(self, capsys):
        assert main(self._BASE + ["--online", "--fault", "die:7@0.01"]) == 2
        assert "only 2 chips" in capsys.readouterr().err

    def test_unknown_traffic_kind_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self._BASE + ["--online", "--traffic", "lumpy"])
        assert excinfo.value.code == 2
        assert "invalid choice: 'lumpy'" in capsys.readouterr().err


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--workload", "bogus"])

    @pytest.mark.parametrize("argv, message", [
        (["dse", "--jobs", "0"], "--jobs: must be an integer >= 1 (got 0)"),
        (["dse", "--jobs", "-2"], "--jobs: must be an integer >= 1 (got -2)"),
        (["dse", "--pe-steps", "-4"],
         "--pe-steps: must be an integer >= 2 (got -4)"),
        (["dse", "--pe-steps", "1"],
         "--pe-steps: must be an integer >= 2 (got 1)"),
        (["dse", "--bw-steps", "0"],
         "--bw-steps: must be an integer >= 1 (got 0)"),
        (["dse", "--bw-steps", "-1"],
         "--bw-steps: must be an integer >= 1 (got -1)"),
        (["serve", "--frames", "0"],
         "--frames: must be an integer >= 1 (got 0)"),
        (["serve", "--fps-scale", "0"], "--fps-scale: must be > 0.0 (got 0.0)"),
        (["serve", "--jitter-ms", "-1"],
         "--jitter-ms: must be >= 0.0 (got -1.0)"),
        (["serve", "--sustained-lo", "0"],
         "--sustained-lo: must be > 0.0 (got 0.0)"),
        (["serve", "--sustained-probes", "0"],
         "--sustained-probes: must be an integer >= 1 (got 0)"),
        (["serve", "--sustained-tolerance", "-0.5"],
         "--sustained-tolerance: must be >= 0.0 (got -0.5)"),
        (["fleet", "--chips", "0"],
         "--chips: must be an integer >= 1 (got 0)"),
        (["fleet", "--jobs", "0"], "--jobs: must be an integer >= 1 (got 0)"),
        (["fleet", "--max-chips", "0"],
         "--max-chips: must be an integer >= 1 (got 0)"),
        (["fleet", "--fps-scale", "-1"],
         "--fps-scale: must be > 0.0 (got -1.0)"),
        (["fleet", "--autoscale", "0"],
         "--autoscale: must be > 0.0 (got 0.0)"),
        (["fleet", "--autoscale", "-2"],
         "--autoscale: must be > 0.0 (got -2.0)"),
        (["fleet", "--fault", "nonsense"],
         "malformed fault clause 'nonsense'"),
        (["fleet", "--fault", "slow:0@0.1x2"],
         "malformed fault clause"),
        (["dse", "--jobs", "two"], "--jobs: expected an integer, got 'two'"),
    ])
    def test_bad_numeric_arguments_rejected_in_parser(self, argv, message,
                                                      capsys):
        """Invalid counts/steps fail fast at parse time with a clear error."""
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert message in capsys.readouterr().err
