"""Tests for the ``herald`` command-line interface."""

import pytest

from repro.cli import main


class TestDescribe:
    def test_describe_lists_workloads_and_classes(self, capsys):
        assert main(["describe"]) == 0
        output = capsys.readouterr().out
        assert "arvr-a" in output
        assert "edge" in output and "cloud" in output


class TestSchedule:
    def test_schedule_fda_on_edge(self, capsys):
        assert main(["schedule", "--workload", "mlperf", "--chip", "edge",
                     "--design", "fda-nvdla"]) == 0
        output = capsys.readouterr().out
        assert "latency" in output
        assert "fda-nvdla-edge" in output

    def test_schedule_rda(self, capsys):
        assert main(["schedule", "--workload", "mlperf", "--chip", "edge",
                     "--design", "rda"]) == 0
        assert "rda-edge" in capsys.readouterr().out

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--design", "tpu"])


class TestDse:
    def test_dse_serial_with_cache_file(self, tmp_path, capsys):
        cache_file = str(tmp_path / "cache.json")
        args = ["dse", "--workload", "arvr-a", "--chip", "edge",
                "--pe-steps", "4", "--bw-steps", "1", "--cache-file", cache_file]
        assert main(args) == 0
        cold_output = capsys.readouterr().out
        assert "best fda" in cold_output
        assert "cold evaluations" in cold_output

        # Second run starts warm from the cache file: zero cold evaluations,
        # identical best-design lines.
        assert main(args) == 0
        warm_output = capsys.readouterr().out
        assert "cost model: 0 cold evaluations" in warm_output
        cold_best = [line for line in cold_output.splitlines() if "best" in line]
        warm_best = [line for line in warm_output.splitlines() if "best" in line]
        assert cold_best == warm_best

    def test_dse_parallel_jobs_match_serial(self, tmp_path, capsys):
        base = ["dse", "--workload", "arvr-a", "--chip", "edge",
                "--pe-steps", "4", "--bw-steps", "1"]
        assert main(base + ["--jobs", "1"]) == 0
        serial_output = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert "process pool (2 jobs)" in parallel_output
        serial_best = [line for line in serial_output.splitlines() if "best" in line]
        parallel_best = [line for line in parallel_output.splitlines() if "best" in line]
        assert serial_best == parallel_best

    def test_dse_rejects_non_positive_jobs(self, capsys):
        assert main(["dse", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--workload", "bogus"])
