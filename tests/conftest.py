"""Shared fixtures for the test suite.

Most tests run on small synthetic workloads and chips so the whole suite stays
fast; the integration tests use the real Table II / Table IV configurations.
"""

from __future__ import annotations

import pytest

from repro.dataflow.styles import EYERISS, NVDLA, SHIDIANNAO
from repro.maestro.cost import CostModel
from repro.maestro.hardware import ChipConfig, SubAcceleratorConfig
from repro.models.graph import ModelGraph
from repro.models.layer import conv2d, dwconv, fc, pwconv
from repro.units import gbps, mib
from repro.workloads.spec import WorkloadSpec


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    """A single shared cost model so its cache carries across tests."""
    return CostModel()


@pytest.fixture(scope="session")
def tiny_chip() -> ChipConfig:
    """A small chip (256 PEs) used by scheduler / partitioner unit tests."""
    return ChipConfig(
        name="tiny",
        num_pes=256,
        noc_bandwidth_bytes_per_s=gbps(8),
        global_buffer_bytes=mib(2),
    )


@pytest.fixture(scope="session")
def small_model() -> ModelGraph:
    """A six-layer CNN with heterogeneous layer shapes."""
    layers = [
        conv2d("conv1", k=32, c=3, y=66, x=66, r=3, s=3, stride=2),
        dwconv("dw1", c=32, y=34, x=34, r=3, s=3),
        pwconv("pw1", k=64, c=32, y=32, x=32),
        conv2d("conv2", k=128, c=64, y=18, x=18, r=3, s=3, stride=2),
        pwconv("pw2", k=256, c=128, y=8, x=8),
        fc("fc", k=10, c=256 * 8 * 8),
    ]
    return ModelGraph.from_layers("smallnet", layers)


@pytest.fixture(scope="session")
def channel_heavy_model() -> ModelGraph:
    """A model dominated by deep-channel layers (prefers NVDLA-style dataflows)."""
    layers = [
        pwconv("pw1", k=512, c=256, y=14, x=14),
        pwconv("pw2", k=1024, c=512, y=7, x=7),
        fc("fc1", k=2048, c=1024),
        fc("fc2", k=1000, c=2048),
    ]
    return ModelGraph.from_layers("channelnet", layers)


@pytest.fixture(scope="session")
def activation_heavy_model() -> ModelGraph:
    """A model dominated by large activations with shallow channels."""
    layers = [
        conv2d("conv1", k=16, c=3, y=130, x=130, r=3, s=3),
        conv2d("conv2", k=16, c=16, y=128, x=128, r=3, s=3),
        conv2d("conv3", k=32, c=16, y=126, x=126, r=3, s=3),
    ]
    return ModelGraph.from_layers("actnet", layers)


@pytest.fixture(scope="session")
def small_workload(small_model, channel_heavy_model, activation_heavy_model) -> WorkloadSpec:
    """A heterogeneous three-model workload used by scheduler / DSE tests."""
    return WorkloadSpec.from_models(
        "small-mix",
        [small_model, channel_heavy_model, activation_heavy_model],
        batches=[2, 1, 1],
    )


@pytest.fixture(scope="session")
def tiny_sub_accelerators(tiny_chip):
    """Two sub-accelerators (NVDLA + Shi-diannao) evenly splitting the tiny chip."""
    half_bw = tiny_chip.noc_bandwidth_bytes_per_s / 2
    return (
        SubAcceleratorConfig(
            name="acc0-nvdla",
            dataflow=NVDLA,
            num_pes=tiny_chip.num_pes // 2,
            bandwidth_bytes_per_s=half_bw,
            buffer_bytes=tiny_chip.global_buffer_bytes,
        ),
        SubAcceleratorConfig(
            name="acc1-shidiannao",
            dataflow=SHIDIANNAO,
            num_pes=tiny_chip.num_pes // 2,
            bandwidth_bytes_per_s=half_bw,
            buffer_bytes=tiny_chip.global_buffer_bytes,
        ),
    )


@pytest.fixture(scope="session")
def all_styles():
    """The three dataflow styles of Table III."""
    return (NVDLA, SHIDIANNAO, EYERISS)
