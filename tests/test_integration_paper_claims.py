"""Integration tests: the paper's qualitative claims, end to end.

These tests run the real Table II workloads on the Table IV accelerator
classes (edge scale, to keep runtime modest) and check the *shape* of the
paper's headline results rather than absolute numbers:

* the best HDA has lower EDP than the best FDA, the SM-FDAs, and the RDA;
* the RDA pays an energy premium over the best HDA (reconfigurable fabric);
* Herald's scheduler beats the per-layer greedy scheduler;
* HDA and RDA designs sit on the latency-energy Pareto front;
* workload change on a fixed Maelstrom design costs only a modest penalty.
"""

import pytest

from repro.accel.builders import make_fda, make_hda, make_rda, make_smfda
from repro.accel.classes import EDGE, MOBILE
from repro.analysis.pareto import pareto_front
from repro.core.dse import HeraldDSE
from repro.core.evaluator import evaluate_design
from repro.core.greedy import GreedyScheduler
from repro.core.partitioner import PartitionSearch
from repro.core.scheduler import HeraldScheduler
from repro.dataflow.styles import ALL_STYLES, NVDLA, SHIDIANNAO
from repro.maestro.cost import CostModel
from repro.workloads.suites import arvr_a, mlperf


@pytest.fixture(scope="module")
def cost_model_shared():
    return CostModel()


@pytest.fixture(scope="module")
def dse(cost_model_shared):
    scheduler = HeraldScheduler(cost_model_shared)
    search = PartitionSearch(cost_model=cost_model_shared, scheduler=scheduler,
                             pe_steps=8, bw_steps=4)
    return HeraldDSE(cost_model=cost_model_shared, scheduler=scheduler,
                     partition_search=search)


@pytest.fixture(scope="module")
def arvr_a_space(dse):
    return dse.explore(arvr_a(), EDGE)


@pytest.fixture(scope="module")
def mlperf_space(dse):
    return dse.explore(mlperf(), EDGE)


class TestDesignSpaceShape:
    @pytest.mark.parametrize("space_fixture", ["arvr_a_space", "mlperf_space"])
    def test_best_hda_beats_best_fda_on_edp(self, space_fixture, request):
        space = request.getfixturevalue(space_fixture)
        assert space.best("hda").edp < space.best("fda").edp

    def test_best_hda_beats_smfda_on_edp_for_mlperf(self, mlperf_space):
        assert mlperf_space.best("hda").edp < mlperf_space.best("sm-fda").edp

    def test_best_hda_close_to_or_better_than_smfda_for_arvr_a(self, arvr_a_space):
        # Deviation from the paper (documented in EXPERIMENTS.md): at edge scale
        # our cost model makes the NVDLA dataflow a good fit for almost every
        # AR/VR-A layer, so a homogeneous NVDLA scale-out captures most of the
        # layer-parallelism benefit; the heterogeneous design stays within a
        # small margin rather than strictly winning.
        assert arvr_a_space.best("hda").edp < 1.15 * arvr_a_space.best("sm-fda").edp

    @pytest.mark.parametrize("space_fixture", ["arvr_a_space", "mlperf_space"])
    def test_best_hda_beats_rda_on_edp(self, space_fixture, request):
        space = request.getfixturevalue(space_fixture)
        assert space.best("hda").edp < space.best("rda").edp

    @pytest.mark.parametrize("space_fixture", ["arvr_a_space", "mlperf_space"])
    def test_rda_pays_energy_premium_over_best_hda(self, space_fixture, request):
        space = request.getfixturevalue(space_fixture)
        assert space.best("rda").energy_mj > space.best("hda", metric="energy").energy_mj

    @pytest.mark.parametrize("space_fixture", ["arvr_a_space", "mlperf_space"])
    def test_an_hda_sits_on_the_pareto_front(self, space_fixture, request):
        space = request.getfixturevalue(space_fixture)
        front = pareto_front(space.points)
        assert any(point.category == "hda" for point in front)

    @pytest.mark.parametrize("space_fixture", ["arvr_a_space", "mlperf_space"])
    def test_not_every_fda_is_pareto_optimal(self, space_fixture, request):
        space = request.getfixturevalue(space_fixture)
        front = pareto_front(space.points)
        fda_points = space.by_category("fda")
        assert any(point not in front for point in fda_points)


class TestSchedulerEfficacy:
    def test_herald_beats_greedy_on_maelstrom(self, cost_model_shared):
        # Sec. V-B reports ~24 % EDP advantage of Herald's scheduler over the
        # per-layer greedy baseline on Maelstrom designs.
        workload = arvr_a()
        design = make_hda(MOBILE, [NVDLA, SHIDIANNAO],
                          pe_partition=(2048, 2048), bw_partition_gbps=(32, 32))
        herald = evaluate_design(design, workload, cost_model=cost_model_shared,
                                 scheduler=HeraldScheduler(cost_model_shared))
        greedy = evaluate_design(design, workload, cost_model=cost_model_shared,
                                 scheduler=GreedyScheduler(cost_model_shared))
        assert herald.edp < greedy.edp
        improvement = (greedy.edp - herald.edp) / greedy.edp * 100.0
        assert improvement > 5.0

    def test_scheduling_time_is_lightweight(self, cost_model_shared):
        # Table VII: a few seconds per workload on a laptop; our reimplementation
        # should stay well under that for the 400-layer AR/VR-A workload.
        workload = arvr_a()
        design = make_hda(EDGE, [NVDLA, SHIDIANNAO])
        result = evaluate_design(design, workload, cost_model=cost_model_shared,
                                 scheduler=HeraldScheduler(cost_model_shared))
        assert result.scheduling_time_s < 10.0


class TestHardwarePartitioning:
    def test_partitioning_matters(self, cost_model_shared):
        # Fig. 6: the PE-partition sweep is not flat -- bad partitions cost
        # noticeably more EDP than the best one.
        from repro.analysis.sweeps import pe_partition_sweep

        points = pe_partition_sweep(arvr_a(), EDGE, steps=8,
                                    cost_model=cost_model_shared)
        edps = [point.edp for point in points]
        assert max(edps) > 1.10 * min(edps)

    def test_optimised_partition_never_worse_than_even(self, cost_model_shared):
        workload = mlperf()
        scheduler = HeraldScheduler(cost_model_shared)
        search = PartitionSearch(cost_model=cost_model_shared, scheduler=scheduler,
                                 pe_steps=8, bw_steps=4)
        best = search.search_best(EDGE, [NVDLA, SHIDIANNAO], workload)
        even = evaluate_design(make_hda(EDGE, [NVDLA, SHIDIANNAO]), workload,
                               cost_model=cost_model_shared, scheduler=scheduler)
        assert best.edp <= even.edp + 1e-12


class TestWorkloadChange:
    def test_workload_change_penalty_is_modest(self, dse):
        # Fig. 13: running a different workload on a fixed Maelstrom design
        # costs only a few percent latency on average.
        from repro.analysis.sweeps import workload_change_study

        study = workload_change_study([arvr_a(), mlperf()], EDGE, dse=dse)
        assert study.average_penalty("latency_s") < 50.0
        for optimised_for in study.results:
            for run_on in study.results[optimised_for]:
                assert study.results[optimised_for][run_on].latency_s > 0


class TestBatchSizeStudy:
    def test_hda_gain_grows_with_batch_size(self, dse):
        # Table VI: HDA latency gains vs. the RDA improve when the batch size
        # grows from one to eight (more independent instances to overlap).
        from repro.analysis.sweeps import batch_size_study

        rows = batch_size_study(mlperf(), EDGE, batch_sizes=(1, 4), dse=dse)
        by_batch = {row.batch_size: row for row in rows}
        assert by_batch[4].latency_gain_vs_rda >= by_batch[1].latency_gain_vs_rda
