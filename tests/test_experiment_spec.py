"""Tests for the declarative experiment schema and its YAML-subset loader.

Three contracts:

* the in-tree YAML subset parses experiment-shaped documents exactly like
  PyYAML does (checked directly against PyYAML when it is installed);
* a malformed spec fails with the *dotted path* of the offending value as
  the message prefix — pinned exactly, since those strings are the user
  interface of ``herald run``;
* every layer's ``to_spec`` / ``from_spec`` pair round-trips bit-for-bit,
  including randomized compositions (floats survive via raw-unit fields and
  ``repr`` serialisation, never via re-rounded human units).
"""

import random

import pytest

from repro.accel.builders import (
    chip_from_spec,
    chip_to_spec,
    design_from_spec,
    design_to_spec,
    make_fda,
    make_hda,
    make_rda,
    make_smfda,
)
from repro.accel.classes import accelerator_class
from repro.core.partitioner import PartitionSearch, search_from_spec, search_to_spec
from repro.dataflow import ALL_STYLES, EYERISS, NVDLA, SHIDIANNAO
from repro.exceptions import SpecError
from repro.experiment import ExperimentSpec, experiment_from_spec, parse_yamlish
from repro.experiment.yamlish import YamlishError
from repro.maestro.hardware import ChipConfig
from repro.serve.faults import ChipFailure, FaultSpec, SlowdownWindow, faults_from_spec, faults_to_spec
from repro.serve.fleet import Fleet, fleet_from_spec, fleet_to_spec
from repro.serve.online import AutoscalePolicy, autoscale_from_spec, autoscale_to_spec
from repro.serve.router import ROUTER_POLICIES, policy_from_spec, policy_to_spec
from repro.serve.traffic import TRAFFIC_KINDS, TrafficSpec, traffic_from_spec, traffic_to_spec
from repro.workloads.suites import arvr_a, mlperf, workload_from_spec, workload_to_spec
from repro.workloads.spec import WorkloadSpec


# ---------------------------------------------------------------------------
# YAML subset
# ---------------------------------------------------------------------------
_SAMPLE = """\
# experiment
kind: closed-loop
name: demo
fleet:
  chips: 2
  policy: round-robin   # trailing comment
streaming:
  frames: 3
  fps_scale: 2.0
faults:
  - 'die:0@0.02'
  - 'slow:1@0.001-0.002x2.5'
chips:
  - kind: fda
    style: nvdla
  - rda
inline: [1, 2.5, "three"]
empty:
flag: true
quoted: 'it''s quoted'
"""

_SAMPLE_PARSED = {
    "kind": "closed-loop",
    "name": "demo",
    "fleet": {"chips": 2, "policy": "round-robin"},
    "streaming": {"frames": 3, "fps_scale": 2.0},
    "faults": ["die:0@0.02", "slow:1@0.001-0.002x2.5"],
    "chips": [{"kind": "fda", "style": "nvdla"}, "rda"],
    "inline": [1, 2.5, "three"],
    "empty": None,
    "flag": True,
    "quoted": "it's quoted",
}


class TestYamlSubset:
    def test_sample_document(self):
        assert parse_yamlish(_SAMPLE) == _SAMPLE_PARSED

    def test_agrees_with_pyyaml(self):
        yaml = pytest.importorskip("yaml")
        assert parse_yamlish(_SAMPLE) == yaml.safe_load(_SAMPLE)

    def test_agrees_with_pyyaml_on_golden_corpus(self):
        yaml = pytest.importorskip("yaml")
        from golden_scheduler import experiment_spec_files

        checked = 0
        for path in experiment_spec_files():
            if not path.endswith((".yaml", ".yml")):
                continue
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            assert parse_yamlish(text) == yaml.safe_load(text), path
            checked += 1
        assert checked >= 2

    def test_empty_document(self):
        assert parse_yamlish("") == {}
        assert parse_yamlish("# only a comment\n") == {}

    def test_top_level_list(self):
        assert parse_yamlish("- 1\n- 2\n") == [1, 2]

    def test_tab_indentation_rejected(self):
        with pytest.raises(YamlishError, match="line 2: tabs are not allowed"):
            parse_yamlish("a:\n\tb: 1\n")

    def test_duplicate_key_rejected(self):
        with pytest.raises(YamlishError, match="line 2: duplicate key 'a'"):
            parse_yamlish("a: 1\na: 2\n")

    def test_mixed_list_and_mapping_rejected(self):
        with pytest.raises(YamlishError, match="cannot mix list items"):
            parse_yamlish("- 1\nkey: 2\n")

    def test_ambiguous_bare_colon_scalar_rejected(self):
        # A value like die:0@1 must be quoted: YAML would parse it as a
        # scalar, but silently accepting any colon-bearing bare string makes
        # "key:value" typos (missing space) unreportable.
        with pytest.raises(YamlishError, match="quote strings containing ':'"):
            parse_yamlish("clause: die:0@1\n")

    def test_indented_first_line_rejected(self):
        with pytest.raises(YamlishError, match="column zero"):
            parse_yamlish("  a: 1\n")

    def test_malformed_inline_collection_rejected(self):
        with pytest.raises(YamlishError, match="malformed inline collection"):
            parse_yamlish("a: [1, 2\n")


# ---------------------------------------------------------------------------
# Malformed experiment specs: exact error paths
# ---------------------------------------------------------------------------
_ERROR_CASES = [
    ({},
     "kind: expected one of ['closed-loop', 'dse', 'fleet', 'schedule', "
     "'serve'] (got null)"),
    ({"kind": "warmup"},
     "kind: expected one of ['closed-loop', 'dse', 'fleet', 'schedule', "
     "'serve'] (got 'warmup')"),
    ({"kind": "schedule", "frames": 2},
     "frames: unknown key (allowed: ['autoscale', 'chip', 'design', 'exec', "
     "'faults', 'fleet', 'kind', 'metric', 'min_chips', 'name', "
     "'optimize_sla', 'schema', 'search', 'streaming', 'sustained', "
     "'traffic', 'workload'])"),
    ({"kind": "schedule", "fleet": {"chips": 2}},
     "fleet: not a setting of kind 'schedule'"),
    ({"kind": "dse", "design": "rda"},
     "design: not a setting of kind 'dse'"),
    ({"kind": "dse", "search": {"pe_steps": 1}},
     "search.pe_steps: expected an int >= 2 (got 1)"),
    ({"kind": "serve", "exec": {"jobs": 4}},
     "exec.jobs: a 'serve' experiment runs in-process (jobs must be 1)"),
    ({"kind": "schedule", "exec": {"cache_file": "x.json"}},
     "exec.cache_file: only a 'dse' experiment takes a persistent cost "
     "cache"),
    ({"kind": "fleet", "design": "rda",
      "fleet": {"chips": ["rda", {"kind": "fda", "style": "nvdla",
                                  "chip": {"num_pes": -3, "noc_gbps": 4,
                                           "buffer_mib": 2}}]}},
     "fleet.chips[1].chip.num_pes: expected a positive int (got -3)"),
    ({"kind": "closed-loop", "faults": ["die:x@1"]},
     "faults[0]: malformed fault clause 'die:x@1'; expected 'die:CHIP@T' "
     "or 'slow:CHIP@T0-T1xF'"),
    ({"kind": "closed-loop", "autoscale": {"interval_s": 1,
                                           "interval_ms": 2}},
     "autoscale: give exactly one of interval_s or interval_ms"),
    ({"kind": "serve", "sustained": {"lo": 2, "hi": 1}},
     "sustained.lo: must be below sustained.hi (got lo=2, hi=1)"),
    ({"kind": "fleet", "traffic": "tsunami"},
     "traffic: expected one of ['bursty', 'churn', 'diurnal', 'poisson'] "
     "(got 'tsunami')"),
    ({"kind": "serve", "traffic": "poisson"},
     "traffic: not a setting of kind 'serve'"),
    ({"kind": "schedule", "schema": 2},
     "schema: this build reads schema 1 (got 2)"),
    ({"kind": "serve",
      "workload": {"name": "custom", "entries": [["unet", 1]]}},
     "streaming: workload 'custom' has no Table II FPS targets; give "
     "explicit 'streams' (or a 'suite') instead of trace knobs"),
    ({"kind": "fleet", "fleet": {"chips": 0}},
     "fleet.chips: expected a positive int (got 0)"),
    ({"kind": "schedule", "design": "tpu"},
     "design: expected one of ['fda-eyeriss', 'fda-nvdla', "
     "'fda-shidiannao', 'maelstrom', 'rda'] (got 'tpu')"),
    ({"kind": "serve", "streaming": {"frames": 0}},
     "streaming.frames: expected a positive int (got 0)"),
    ({"kind": "fleet", "fleet": {"policy": "random"}},
     "fleet.policy: expected one of ['earliest-completion', "
     "'least-outstanding', 'passthrough', 'round-robin', 'sticky'] "
     "(got 'random')"),
]


class TestMalformedSpecs:
    @pytest.mark.parametrize("spec,message", _ERROR_CASES,
                             ids=[message.split(":")[0] + f"-{index}"
                                  for index, (_, message)
                                  in enumerate(_ERROR_CASES)])
    def test_exact_error_path(self, spec, message):
        with pytest.raises(SpecError) as excinfo:
            experiment_from_spec(spec)
        assert str(excinfo.value) == message

    def test_non_mapping_spec(self):
        with pytest.raises(SpecError) as excinfo:
            experiment_from_spec([1, 2])
        assert str(excinfo.value) == "experiment: expected a mapping (got a list)"


# ---------------------------------------------------------------------------
# Valid specs
# ---------------------------------------------------------------------------
class TestValidSpecs:
    def test_minimal_schedule_defaults(self):
        spec = experiment_from_spec({"kind": "schedule"})
        assert isinstance(spec, ExperimentSpec)
        assert spec.name == "schedule"
        assert spec.workload == arvr_a()
        assert spec.chip == accelerator_class("edge")
        assert spec.design == "maelstrom"
        assert spec.metric == "edp"

    def test_closed_loop_is_online(self):
        spec = experiment_from_spec({"kind": "closed-loop", "design": "rda"})
        assert spec.online
        assert spec.fleet == {"chips": 2}
        assert spec.policy == "earliest-completion"

    def test_sustained_defaults_by_kind(self):
        assert experiment_from_spec({"kind": "serve"}).sustained.enabled
        assert not experiment_from_spec(
            {"kind": "fleet", "design": "rda"}).sustained.enabled

    def test_min_chips_bool_shorthand(self):
        spec = experiment_from_spec({"kind": "fleet", "design": "rda",
                                     "min_chips": True})
        assert spec.min_chips.enabled and spec.min_chips.max_chips == 8

    def test_explicit_design_mapping_builds_eagerly(self):
        spec = experiment_from_spec({
            "kind": "schedule",
            "design": {"kind": "hda", "styles": ["nvdla", "shidiannao"]},
        })
        assert spec.design == make_hda(accelerator_class("edge"),
                                       [NVDLA, SHIDIANNAO])

    def test_traffic_shape_knobs(self):
        spec = experiment_from_spec({
            "kind": "fleet", "design": "rda",
            "traffic": {"kind": "bursty", "burst_factor": 6.0},
        })
        assert spec.traffic.kind == "bursty"
        assert spec.traffic.shape == {"burst_factor": 6.0}


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------
def _random_chip(rng: random.Random) -> ChipConfig:
    return ChipConfig(
        name=f"chip-{rng.randrange(1000)}",
        num_pes=rng.randrange(64, 4096),
        noc_bandwidth_bytes_per_s=rng.uniform(1e9, 1e12),
        global_buffer_bytes=rng.randrange(1 << 20, 1 << 25),
        dram_bandwidth_bytes_per_s=(None if rng.random() < 0.3
                                    else rng.uniform(1e9, 1e11)),
        clock_hz=rng.uniform(2e8, 2e9),
    )


class TestRoundTrips:
    def test_chip_round_trip_exact(self):
        rng = random.Random(7)
        for _ in range(25):
            chip = _random_chip(rng)
            assert chip_from_spec(chip_to_spec(chip)) == chip
        assert chip_to_spec(accelerator_class("edge")) == "edge"

    def test_design_round_trip_exact(self):
        rng = random.Random(11)
        for _ in range(25):
            chip = _random_chip(rng)
            style = rng.choice(ALL_STYLES)
            builders = [
                lambda: make_rda(chip),
                lambda: make_fda(chip, style),
                lambda: make_smfda(chip, style, rng.randrange(2, 5)),
                lambda: make_hda(chip, rng.sample(list(ALL_STYLES), 2)),
            ]
            design = rng.choice(builders)()
            assert design_from_spec(design_to_spec(design)) == design

    def test_workload_round_trip(self):
        for workload in (arvr_a(), mlperf(), mlperf(7),
                         WorkloadSpec(name="duo", entries=[("unet", 2),
                                                           ("resnet50", 1)])):
            assert workload_from_spec(workload_to_spec(workload)) == workload

    def test_traffic_round_trip_exact(self):
        rng = random.Random(13)
        for _ in range(25):
            traffic = TrafficSpec(
                kind=rng.choice(TRAFFIC_KINDS),
                model_name="unet",
                rate_fps=rng.uniform(0.1, 500.0),
                frames=rng.randrange(1, 32),
                phase_s=rng.choice([0.0, rng.uniform(0.0, 0.1)]),
                seed=rng.randrange(100),
                deadline_s=rng.choice([None, rng.uniform(1e-4, 1.0)]),
                burst_factor=rng.choice([4.0, rng.uniform(1.0, 10.0)]),
                period_frames=rng.choice([16.0, rng.uniform(2.0, 64.0)]),
            )
            assert traffic_from_spec(traffic_to_spec(traffic)) == traffic

    def test_faults_round_trip_exact(self):
        rng = random.Random(17)
        for _ in range(25):
            faults = FaultSpec(
                failures=tuple(
                    ChipFailure(chip, rng.uniform(0.0, 0.1))
                    for chip in rng.sample(range(4), rng.randrange(3))),
                slowdowns=tuple(
                    SlowdownWindow(rng.randrange(4), start, start + width,
                                   rng.uniform(1.1, 8.0))
                    for start, width in ((rng.uniform(0.0, 0.1),
                                          rng.uniform(1e-4, 0.1)),)
                    for _ in range(rng.randrange(2))),
            )
            assert faults_from_spec(faults_to_spec(faults)) == faults

    def test_autoscale_round_trip(self):
        rng = random.Random(19)
        for _ in range(25):
            policy = AutoscalePolicy(
                interval_s=rng.uniform(1e-5, 1e-2),
                min_chips=rng.randrange(1, 4),
                max_chips=rng.choice([None, rng.randrange(4, 9)]),
                target_queue_per_chip=rng.choice([2.0, rng.uniform(0.5, 8.0)]),
            )
            assert autoscale_from_spec(autoscale_to_spec(policy)) == policy

    def test_search_round_trip(self):
        search = PartitionSearch(strategy="random", pe_steps=5, bw_steps=3,
                                 metric="latency", samples=9, seed=4)
        spec = search_to_spec(search)
        rebuilt = search_from_spec(spec)
        assert search_to_spec(rebuilt) == spec
        assert search_to_spec(search_from_spec({})) == {}

    def test_policy_round_trip(self):
        for name in ROUTER_POLICIES:
            assert policy_to_spec(policy_from_spec(name)) == name

    def test_fleet_round_trip_exact(self):
        chip = accelerator_class("edge")

        def build(sub, path):
            assert sub is not None
            return design_from_spec(sub, path=path, chip=chip)

        homogeneous = Fleet.homogeneous(make_rda(chip), 3)
        heterogeneous = Fleet(name="duo", chips=(
            make_rda(chip), make_fda(chip, EYERISS)))
        for fleet in (homogeneous, heterogeneous):
            spec = fleet_to_spec(fleet, design_to_spec)
            assert fleet_from_spec(spec, build) == fleet

    def test_homogeneous_fleet_collapses_to_count(self):
        fleet = Fleet.homogeneous(make_rda(accelerator_class("edge")), 4)
        spec = fleet_to_spec(fleet, design_to_spec)
        assert spec["chips"] == 4
