"""Property-based tests of the closed-loop fleet engine.

The a-priori dispatcher is pinned bit-for-bit by the golden corpus and the
reduced-regime equivalence test; this module covers the behaviours only the
*feedback* loop exhibits, over random DAG workloads x traffic processes x
1-4-chip fleets, with and without injected faults:

* **frame conservation** — every generated frame is either completed on
  exactly one chip or explicitly recorded as lost; nothing is duplicated or
  silently dropped, across re-dispatch, work stealing, and chip death;
* **liveness** — while at least one chip never dies, no frame starves:
  everything completes and the lost set is empty;
* **monotone degradation** — killing a chip at ``t = 0`` never improves the
  fleet p99.  Pinned through the stronger structural fact that makes it
  true: under a greedy observed-state policy on a homogeneous fleet, a
  chip dead from the start is *exactly* a smaller fleet (per-frame finish
  times match the (N-1)-chip run), and shrinking a fleet is never an
  improvement.  Scoped to the greedy policies — round-robin is modular
  arithmetic over the live set, for which the claim is simply false;
* **traffic determinism** — the same :class:`TrafficSpec` always compiles
  to the identical release tuple (seeded SHA-256 RNG, no platform or
  process dependence), sorted, with exactly the requested frame count.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.scheduler import HeraldScheduler
from repro.maestro.cost import CostModel
from repro.serve import (
    TRAFFIC_KINDS,
    ChipFailure,
    FaultSpec,
    Fleet,
    FleetSimulator,
    SlowdownWindow,
    StreamingWorkload,
    TrafficSpec,
)
from test_fleet_properties import _chip, _fleet, _random_graph

#: Shared, memoising cost model (costs are pure; decisions are unaffected).
_COST_MODEL = CostModel()

#: Policies that dispatch greedily on observed state; round-robin ignores
#: queue depth, so the degradation property does not apply to it.
_GREEDY_POLICIES = ("least-outstanding", "earliest-completion")

_ONLINE_POLICIES = ("round-robin",) + _GREEDY_POLICIES + ("sticky",)


def _simulator():
    return FleetSimulator(cost_model=_COST_MODEL,
                          scheduler=HeraldScheduler(_COST_MODEL))


def _traffic_streaming(n, edge_seed, dims, num_streams, frames, kind,
                       rate_fps) -> StreamingWorkload:
    """Random DAG models, each fed by one generated traffic stream."""
    streams, models = [], {}
    for index in range(num_streams):
        name = f"m{index}"
        models[name] = _random_graph(name, max(3, n - index),
                                     edge_seed + index, dims)
        spec = TrafficSpec(kind=kind, model_name=name, rate_fps=rate_fps,
                           frames=frames, seed=edge_seed,
                           phase_s=index / (rate_fps * (index + 1.0)))
        streams.append(spec.to_trace())
    return StreamingWorkload("prop-closed-loop", streams=streams,
                             models=models)


def _total_frames(streaming: StreamingWorkload) -> int:
    return sum(stream.frames for stream in streaming.streams)


def _build_faults(num_chips, death_fraction, slow_chip, horizon_s):
    """A fault plan scaled to the run's rough time horizon.

    ``death_fraction is None`` injects nothing; otherwise chip 0 dies at
    that fraction of the horizon (strictly past zero, so a 1-chip fleet
    still boots) and, independently, ``slow_chip`` may get a 2.5x
    straggler window over the middle of the run.
    """
    failures = ()
    slowdowns = ()
    if death_fraction is not None:
        failures = (ChipFailure(0, max(1e-9, death_fraction * horizon_s)),)
    if slow_chip is not None and slow_chip < num_chips:
        slowdowns = (SlowdownWindow(slow_chip, 0.25 * horizon_s,
                                    0.75 * horizon_s, 2.5),)
    if not failures and not slowdowns:
        return None
    return FaultSpec(failures=failures, slowdowns=slowdowns)


_closed_loop_params = dict(
    n=st.integers(min_value=3, max_value=6),
    edge_seed=st.integers(min_value=0, max_value=2**31),
    dims=st.lists(st.sampled_from([4, 8, 16, 64, 256]),
                  min_size=12, max_size=12),
    num_streams=st.integers(min_value=1, max_value=2),
    frames=st.integers(min_value=1, max_value=6),
    kind=st.sampled_from(TRAFFIC_KINDS),
    rate_fps=st.sampled_from([1e2, 1e4, 1e6]),
    num_chips=st.integers(min_value=1, max_value=4),
    heterogeneous=st.booleans(),
    policy=st.sampled_from(_ONLINE_POLICIES),
    work_stealing=st.booleans(),
    death_fraction=st.sampled_from([None, 0.1, 0.5, 2.0]),
    slow_chip=st.sampled_from([None, 0, 1]),
)


class TestFrameConservation:
    @given(**_closed_loop_params)
    @settings(max_examples=30, deadline=None)
    def test_completed_and_lost_partition_the_frames(
            self, n, edge_seed, dims, num_streams, frames, kind, rate_fps,
            num_chips, heterogeneous, policy, work_stealing, death_fraction,
            slow_chip):
        streaming = _traffic_streaming(n, edge_seed, dims, num_streams,
                                       frames, kind, rate_fps)
        fleet = _fleet(num_chips, heterogeneous)
        faults = _build_faults(num_chips, death_fraction, slow_chip,
                               horizon_s=frames / rate_fps)
        result = _simulator().simulate_online(
            streaming, fleet, policy=policy, faults=faults,
            work_stealing=work_stealing)

        # One record per generated frame, each either completed or lost.
        assert len(result.frames) == _total_frames(streaming)
        assert len({record.frame_id for record in result.frames}) \
            == len(result.frames)
        completed = {record.frame_id for record in result.frames
                     if not record.lost}
        lost = set(result.stats.lost_frame_ids)
        everything = {record.frame_id for record in result.frames}
        assert completed | lost == everything
        assert completed & lost == set()

        for record in result.frames:
            if record.lost:
                assert record.finish_s is None
                # A lost frame may still have *begun* service — on a chip
                # that died mid-frame — but then it must have a history.
                if record.start_s is not None:
                    assert record.chip_history
            else:
                # Completed frames ran somewhere, causally.
                assert record.chip_history, record.frame_id
                assert all(0 <= chip < fleet.num_chips
                           for chip in record.chip_history)
                assert record.start_s >= record.release_s - 1e-12
                assert record.finish_s >= record.start_s
                frame_index = int(record.frame_id.rsplit("#", 1)[1])
                assert result.assignments[(record.model_name, frame_index)] \
                    == record.chip_history[-1]

        # Without faults nothing can die, so nothing is re-dispatched or
        # lost — stealing is the only reason for multi-chip histories.
        if faults is None:
            assert result.stats.redispatched_frames == 0
            assert lost == set()
            if not work_stealing:
                assert result.stats.stolen_frames == 0
                assert all(len(record.chip_history) == 1
                           for record in result.frames)

    @given(**_closed_loop_params)
    @settings(max_examples=15, deadline=None)
    def test_report_counts_the_completed_frames(
            self, n, edge_seed, dims, num_streams, frames, kind, rate_fps,
            num_chips, heterogeneous, policy, work_stealing, death_fraction,
            slow_chip):
        streaming = _traffic_streaming(n, edge_seed, dims, num_streams,
                                       frames, kind, rate_fps)
        fleet = _fleet(num_chips, heterogeneous)
        faults = _build_faults(num_chips, death_fraction, slow_chip,
                               horizon_s=frames / rate_fps)
        result = _simulator().simulate_online(
            streaming, fleet, policy=policy, faults=faults,
            work_stealing=work_stealing)
        completed = [record for record in result.frames if not record.lost]
        assert result.report.total_frames == len(completed)
        assert sum(stats.frames for stats in result.report.chips) \
            == len(completed)
        summary = result.report.summary()
        assert summary["online"]["lost_frames"] \
            == len(result.stats.lost_frame_ids)


class TestLiveness:
    @given(**_closed_loop_params)
    @settings(max_examples=20, deadline=None)
    def test_no_frame_starves_while_a_chip_survives(
            self, n, edge_seed, dims, num_streams, frames, kind, rate_fps,
            num_chips, heterogeneous, policy, work_stealing, death_fraction,
            slow_chip):
        streaming = _traffic_streaming(n, edge_seed, dims, num_streams,
                                       frames, kind, rate_fps)
        fleet = _fleet(num_chips, heterogeneous)
        # Kill every chip except the last; the survivor guarantees progress.
        horizon_s = frames / rate_fps
        failures = tuple(ChipFailure(chip, (chip + 1) * 0.2 * horizon_s)
                         for chip in range(num_chips - 1))
        faults = FaultSpec(failures=failures) if failures else None
        result = _simulator().simulate_online(
            streaming, fleet, policy=policy, faults=faults,
            work_stealing=work_stealing)
        assert result.stats.lost_frame_ids == ()
        assert all(record.finish_s is not None for record in result.frames)


class TestMonotoneDegradation:
    @given(
        n=st.integers(min_value=3, max_value=6),
        edge_seed=st.integers(min_value=0, max_value=2**31),
        dims=st.lists(st.sampled_from([4, 8, 16, 64, 256]),
                      min_size=12, max_size=12),
        frames=st.integers(min_value=2, max_value=6),
        kind=st.sampled_from(TRAFFIC_KINDS),
        rate_fps=st.sampled_from([1e2, 1e4, 1e6]),
        num_chips=st.integers(min_value=2, max_value=4),
        policy=st.sampled_from(_GREEDY_POLICIES),
    )
    @settings(max_examples=20, deadline=None)
    def test_killing_a_chip_never_improves_p99(
            self, n, edge_seed, dims, frames, kind, rate_fps, num_chips,
            policy):
        streaming = _traffic_streaming(n, edge_seed, dims, 1, frames, kind,
                                       rate_fps)
        simulator = _simulator()
        fleet = _fleet(num_chips, heterogeneous=False)
        baseline = simulator.simulate_online(
            streaming, fleet, policy=policy, work_stealing=False)
        degraded = simulator.simulate_online(
            streaming, fleet, policy=policy, work_stealing=False,
            faults=FaultSpec(failures=(ChipFailure(0, 0.0),)))
        # The structural fact behind the inequality: a chip dead from t=0
        # under a greedy observed-state policy IS the (N-1)-chip fleet —
        # identical per-frame finish times, chip indices shifted by one.
        shrunk = simulator.simulate_online(
            streaming, _fleet(num_chips - 1, heterogeneous=False),
            policy=policy, work_stealing=False)
        assert [(record.frame_id, record.start_s, record.finish_s)
                for record in degraded.frames] \
            == [(record.frame_id, record.start_s, record.finish_s)
                for record in shrunk.frames]
        assert [tuple(chip - 1 for chip in record.chip_history)
                for record in degraded.frames] \
            == [record.chip_history for record in shrunk.frames]
        assert degraded.report.p99_latency_s \
            >= baseline.report.p99_latency_s - 1e-12


class TestTrafficDeterminism:
    @given(
        kind=st.sampled_from(TRAFFIC_KINDS),
        rate_fps=st.sampled_from([0.5, 30.0, 1e4]),
        frames=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
        phase_ms=st.sampled_from([0.0, 1.5]),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_spec_same_trace(self, kind, rate_fps, frames, seed,
                                  phase_ms):
        spec = TrafficSpec(kind=kind, model_name="det", rate_fps=rate_fps,
                           frames=frames, seed=seed, phase_s=phase_ms * 1e-3)
        first = spec.release_times_s()
        again = TrafficSpec(kind=kind, model_name="det", rate_fps=rate_fps,
                            frames=frames, seed=seed,
                            phase_s=phase_ms * 1e-3).release_times_s()
        assert first == again
        assert len(first) == frames
        assert list(first) == sorted(first)
        assert all(release >= phase_ms * 1e-3 for release in first)
        trace = spec.to_trace()
        assert trace.release_times_s() == first
        assert trace.model_name == "det" and trace.frames == frames

    @given(
        kind=st.sampled_from(TRAFFIC_KINDS),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_seed_and_model_name_separate_streams(self, kind, seed):
        base = dict(kind=kind, rate_fps=100.0, frames=32)
        one = TrafficSpec(model_name="a", seed=seed, **base)
        # A different model name re-keys the RNG even under the same seed,
        # so co-scheduled streams never share an arrival sequence.
        other = TrafficSpec(model_name="b", seed=seed, **base)
        assert one.release_times_s() != other.release_times_s()
