"""Tests for the evaluation hot-path overhaul.

Three contracts are pinned here:

1. **Bit-for-bit equivalence.**  The shape-keyed cost memo, the heap-based
   event-driven list scheduler, and the incremental partition search must not
   change a single scheduling decision or metric.  Golden files generated from
   the pre-overhaul seed implementation (``tests/golden/``, regenerable with
   ``python tests/golden_scheduler.py --write``) cover every (metric x
   ordering x load-balance x memory-limit x post-processing) configuration on
   chain / diamond / UNet-skip / 4-instance mixed workloads, plus a full DSE
   ranking; a hypothesis-driven random-DAG sweep checks the heap scheduler
   against the retained quadratic reference implementation.

2. **No memo aliasing.**  ``Layer.shape_key`` equality must imply identical
   ``LayerCost`` on every dataflow style, and layers that differ only in
   ``stride`` / ``upscale`` / operator semantics must produce distinct keys.

3. **Cache migration.**  Old full-``Layer``-keyed persistent cache files are
   discarded transparently (never mixed, never fatal).
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

import golden_scheduler
from repro.accel.builders import enumerate_fdas, make_fda
from repro.core.partitioner import PartitionSearch
from repro.core.scheduler import HeraldScheduler
from repro.dataflow.mapping import (build_mapping, clear_mapping_cache,
                                    mapping_cache_info)
from repro.dataflow.styles import ALL_STYLES, NVDLA, SHIDIANNAO
from repro.exec import (EvaluationTask, PersistentCostCache,
                        ProcessPoolBackend, SerialBackend)
from repro.exec.cache import CACHE_FORMAT_VERSION
from repro.maestro import batch as batch_module
from repro.maestro.cost import CostModel, clear_all_memos
from repro.maestro.hardware import SubAcceleratorConfig
from repro.maestro.reuse import (analyse_layer_reuse, clear_reuse_cache,
                                 reuse_cache_size)
from repro.models.graph import ModelGraph
from repro.models.layer import Layer, LayerType, conv2d, fc, pwconv, upconv
from repro.units import gbps, mib
from repro.workloads.spec import WorkloadSpec


def _sub(style=NVDLA, pes=128, name="sub0"):
    return SubAcceleratorConfig(name=name, dataflow=style, num_pes=pes,
                                bandwidth_bytes_per_s=gbps(4),
                                buffer_bytes=mib(1))


def _cost_fields(cost):
    """Every numeric field of a LayerCost (identity fields excluded)."""
    return (cost.compute_cycles, cost.noc_cycles, cost.dram_cycles,
            cost.overhead_cycles, cost.energy_compute_pj, cost.energy_rf_pj,
            cost.energy_local_pj, cost.energy_noc_pj, cost.energy_sram_pj,
            cost.energy_dram_pj, cost.energy_overhead_pj, cost.utilisation,
            cost.num_pes, cost.clock_hz)


# ---------------------------------------------------------------------------
# Shape keys
# ---------------------------------------------------------------------------

#: Small dimension domains so hypothesis actually produces shape collisions.
_small_layers = st.builds(
    lambda kind, k, c, y, r, stride, upscale, name: {
        "conv": lambda: Layer(name, LayerType.CONV2D, k=k, c=c,
                              y=max(y, r + stride), x=max(y, r + stride),
                              r=r, s=r, stride=stride),
        "dw": lambda: Layer(name, LayerType.DWCONV, k=c, c=c,
                            y=max(y, r + 1), x=max(y, r + 1), r=r, s=r),
        "pw": lambda: Layer(name, LayerType.PWCONV, k=k, c=c, y=y, x=y),
        "up": lambda: Layer(name, LayerType.UPCONV, k=k, c=c,
                            y=max(y, r), x=max(y, r), r=r, s=r,
                            upscale=upscale),
        "fc": lambda: Layer(name, LayerType.FC, k=k, c=c, y=1, x=1),
    }[kind](),
    kind=st.sampled_from(["conv", "dw", "pw", "up", "fc"]),
    k=st.sampled_from([4, 8, 16]),
    c=st.sampled_from([4, 8, 16]),
    y=st.sampled_from([8, 16]),
    r=st.sampled_from([1, 3]),
    stride=st.sampled_from([1, 2]),
    upscale=st.sampled_from([2, 3]),
    name=st.sampled_from(["alpha", "beta"]),
)


class TestShapeKey:
    def test_identity_fields_do_not_participate(self):
        a = conv2d("left", k=8, c=4, y=16, x=16, r=3, s=3, model_name="resnet")
        b = conv2d("right", k=8, c=4, y=16, x=16, r=3, s=3, model_name="unet")
        assert a != b
        assert a.shape_key == b.shape_key

    def test_stride_produces_distinct_keys(self):
        a = conv2d("a", k=8, c=4, y=16, x=16, r=3, s=3, stride=1)
        b = conv2d("a", k=8, c=4, y=16, x=16, r=3, s=3, stride=2)
        assert a.shape_key != b.shape_key

    def test_upscale_produces_distinct_keys(self):
        a = upconv("a", k=8, c=4, y=16, x=16, r=3, s=3, upscale=2)
        b = upconv("a", k=8, c=4, y=16, x=16, r=3, s=3, upscale=4)
        assert a.shape_key != b.shape_key

    def test_layer_type_produces_distinct_keys(self):
        # A 1x1 CONV2D and a PWCONV have equal raw dimensions (and costs) but
        # must not alias: operator semantics are part of the shape.
        a = conv2d("a", k=8, c=8, y=16, x=16, r=1, s=1)
        b = pwconv("a", k=8, c=8, y=16, x=16)
        assert a.shape_key != b.shape_key
        dw = Layer("a", LayerType.DWCONV, k=8, c=8, y=16, x=16, r=1, s=1)
        assert dw.shape_key != a.shape_key

    @given(a=_small_layers, b=_small_layers)
    @settings(max_examples=150, deadline=None)
    def test_equal_shape_key_means_identical_cost_on_every_style(self, a, b):
        """shape_key equality <=> cost identity, sampled over collisions.

        Forward direction on colliding draws: equal keys must yield identical
        LayerCost numerics on every style.  Contrapositive on non-colliding
        draws with equal raw dimension tuples (stride/upscale/type aliasing
        candidates): the keys must differ whenever the estimator is allowed to
        produce different numbers.
        """
        model = CostModel()
        sub = _sub()
        if a.shape_key == b.shape_key:
            for style in ALL_STYLES:
                cost_a = model.layer_cost_with_style(a, style, sub)
                cost_b = model.layer_cost_with_style(b, style, sub)
                assert _cost_fields(cost_a) == _cost_fields(cost_b)
        else:
            # Distinct keys: memo entries must be distinct too.
            model.layer_cost(a, sub)
            model.layer_cost(b, sub)
            assert model.cache_size() == 2

    def test_same_shape_layers_share_one_memo_entry(self):
        model = CostModel()
        sub = _sub()
        first = model.layer_cost(
            conv2d("block1", k=8, c=4, y=16, x=16, r=3, s=3, model_name="m1"), sub)
        second = model.layer_cost(
            conv2d("block7", k=8, c=4, y=16, x=16, r=3, s=3, model_name="m2"), sub)
        assert second is first
        assert model.cache_size() == 1
        assert (model.hits, model.misses) == (1, 1)

    def test_precomputed_derivations_survive_pickle_and_replace(self):
        from dataclasses import replace
        layer = upconv("up", k=8, c=4, y=16, x=16, r=3, s=3, upscale=2)
        clone = pickle.loads(pickle.dumps(layer))
        assert clone.shape_key == layer.shape_key
        assert clone.macs == layer.macs
        wider = replace(layer, k=16)
        assert wider.output_elements == 2 * layer.output_elements
        assert wider.shape_key != layer.shape_key


class TestBatchLayerCosts:
    def test_dedupes_by_shape_before_estimating(self):
        model = CostModel()
        accs = [_sub(NVDLA, name="a0"), _sub(SHIDIANNAO, name="a1")]
        layers = [conv2d(f"l{i}", k=8, c=4, y=16, x=16, r=3, s=3)
                  for i in range(10)]
        layers.append(fc("head", k=10, c=64))
        table = model.batch_layer_costs(layers, accs)
        assert model.misses == 2 * 2  # 2 unique shapes x 2 sub-accelerators
        assert len(table) == 4
        for layer in layers:
            for acc in accs:
                assert table[(layer.shape_key, acc.name)] is \
                    model.layer_cost(layer, acc)

    def test_prewarmed_partition_search_evaluates_without_cold_queries(
            self, tiny_chip, small_workload):
        model = CostModel()
        scheduler = HeraldScheduler(model)
        search = PartitionSearch(cost_model=model, scheduler=scheduler,
                                 pe_steps=4, bw_steps=2)
        styles = [NVDLA, SHIDIANNAO]
        candidates = search.candidate_partitions(tiny_chip, len(styles))
        warmed = search.prewarm(tiny_chip, styles, small_workload, candidates)
        assert warmed > 0
        misses_before = model.misses
        for pes, bws in candidates:
            search._evaluate(tiny_chip, styles, small_workload, pes, bws)
        assert model.misses == misses_before, \
            "candidate evaluation after prewarm must be pure memo lookups"


class TestWorkloadShapeDedup:
    def test_unique_shape_layers_collapse_batches_and_blocks(self):
        graph = ModelGraph.from_layers("rep", [
            conv2d("c1", k=8, c=4, y=16, x=16, r=3, s=3),
            conv2d("c2", k=8, c=4, y=14, x=14, r=3, s=3),
            conv2d("c3", k=8, c=4, y=16, x=16, r=3, s=3),  # same shape as c1
        ])
        workload = WorkloadSpec.from_models("w", [graph], batches=4)
        assert workload.total_layers == 12
        assert workload.unique_layers == 3
        assert workload.unique_shapes == 2
        names = [layer.name for layer in workload.unique_shape_layers()]
        assert names == ["c1", "c2"]

    def test_memos_track_entry_mutation(self):
        graph = ModelGraph.from_layers("rep", [fc("a", k=4, c=4)])
        workload = WorkloadSpec.from_models("w", [graph], batches=1)
        assert len(workload.instances()) == 1
        workload.entries.append(("rep", 2))
        assert len(workload.instances()) == 3

    def test_pickle_strips_derived_memos(self, small_workload):
        small_workload.instances()
        small_workload.unique_shape_layers()
        clone = pickle.loads(pickle.dumps(small_workload))
        assert clone._instances_memo is None
        assert clone._shapes_memo is None
        assert [i.instance_id for i in clone.instances()] == \
            [i.instance_id for i in small_workload.instances()]


# ---------------------------------------------------------------------------
# Persistent-cache migration
# ---------------------------------------------------------------------------

class TestCacheMigration:
    def _legacy_v2_payload(self):
        return {
            "version": 2,
            "fingerprint": "whatever",
            "entries": [{
                "layer": {"name": "l", "k": 1, "c": 1, "y": 1, "x": 1, "r": 1,
                          "s": 1, "stride": 1, "upscale": 1, "model_name": "",
                          "layer_type": "FC"},
                "dataflow": "nvdla", "num_pes": 64,
                "bandwidth_bytes_per_s": 1, "buffer_bytes": 1,
                "clock_hz": 1e9, "cost": {},
            }],
        }

    def test_legacy_file_is_discarded_not_corrupted(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps(self._legacy_v2_payload()))
        cache = PersistentCostCache(str(path))
        assert len(cache) == 0
        assert not cache.corrupted
        assert cache.discarded_version == 2
        assert "legacy v2" in cache.describe()

    def test_legacy_file_is_rewritten_in_current_format(self, tmp_path,
                                                        tiny_chip,
                                                        small_workload):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps(self._legacy_v2_payload()))
        backend = SerialBackend(cache=PersistentCostCache(str(path)))
        backend.run([EvaluationTask(0, make_fda(tiny_chip, NVDLA),
                                    small_workload)])
        payload = json.loads(path.read_text())
        assert payload["version"] == CACHE_FORMAT_VERSION
        assert payload["entries"], "migrated file must carry fresh entries"
        reloaded = PersistentCostCache(str(path))
        assert reloaded.discarded_version is None
        assert len(reloaded) > 0

    def test_future_version_is_corrupted_not_discarded(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 999, "entries": []}))
        cache = PersistentCostCache(str(path))
        assert cache.corrupted
        assert cache.discarded_version is None

    def test_entries_are_shape_shared_across_models(self, tmp_path):
        """The on-disk cache stores one entry per shape, not per layer name."""
        path = str(tmp_path / "cache.json")
        model = CostModel()
        sub = _sub()
        for index in range(5):
            model.layer_cost(conv2d(f"block{index}", k=8, c=4, y=16, x=16,
                                    r=3, s=3, model_name=f"net{index}"), sub)
        cache = PersistentCostCache(path)
        cache.capture(model)
        cache.save()
        assert len(PersistentCostCache(path)) == 1


# ---------------------------------------------------------------------------
# Scheduler equivalence (golden files generated from the seed implementation)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def golden_timelines():
    return golden_scheduler.load_golden(golden_scheduler.TIMELINES_FILE)


@pytest.fixture(scope="module")
def current_timelines():
    return golden_scheduler.generate_timelines()


class TestGoldenEquivalence:
    def test_matrix_is_complete(self, golden_timelines):
        expected = [key
                    for workload in golden_scheduler.build_workloads()
                    for key in golden_scheduler.scenario_keys(workload)]
        assert sorted(golden_timelines) == sorted(expected)
        assert len(expected) == 192

    def test_every_scenario_matches_seed_bit_for_bit(self, golden_timelines,
                                                     current_timelines):
        mismatched = [key for key in golden_timelines
                      if golden_timelines[key] != current_timelines[key]]
        assert mismatched == []

    def test_memory_violation_scenarios_participate(self, golden_timelines):
        assert any(record["memory_violations"] > 0
                   for record in golden_timelines.values())

    def test_dse_ranking_matches_seed_bit_for_bit(self):
        golden = golden_scheduler.load_golden(golden_scheduler.DSE_FILE)
        assert golden_scheduler.run_dse() == golden

    def test_pool_backend_matches_seed_rankings(self):
        golden = golden_scheduler.load_golden(golden_scheduler.DSE_FILE)
        backend = ProcessPoolBackend(jobs=4)
        assert golden_scheduler.run_dse(backend=backend) == golden


def _timeline_tuples(schedule):
    return [(e.instance_id, e.layer_index, e.sub_accelerator, e.start_cycle,
             e.finish_cycle) for e in schedule.entries]


_dag_configs = st.tuples(
    st.sampled_from(["edp", "latency", "energy"]),
    st.sampled_from(["breadth", "depth"]),
    st.sampled_from([None, 1.25, 2.0]),
)


class TestHeapSchedulerMatchesReference:
    @given(
        n=st.integers(min_value=3, max_value=12),
        edge_seed=st.integers(min_value=0, max_value=2**31),
        dims=st.lists(st.sampled_from([4, 8, 16, 64, 256]),
                      min_size=12, max_size=12),
        config=_dag_configs,
    )
    @settings(max_examples=60, deadline=None)
    def test_random_dags(self, n, edge_seed, dims, config):
        """Heap and reference list schedules agree on arbitrary DAG shapes."""
        import random as random_module

        rng = random_module.Random(edge_seed)
        layers = [fc(f"l{i}", k=dims[i], c=dims[(i * 7 + 3) % 12])
                  for i in range(n)]
        graph = ModelGraph.from_layers("dag", layers)
        for i in range(n):
            for j in range(i + 2, n):
                if rng.random() < 0.3:
                    graph.add_edge(f"l{i}", f"l{j}")
        workload = WorkloadSpec.from_models("dag-wl", [graph], batches=2)

        metric, ordering, lb = config
        scheduler = HeraldScheduler(CostModel(), metric=metric,
                                    ordering=ordering,
                                    load_balance_factor=lb)
        accs = [_sub(NVDLA, name="a0"), _sub(SHIDIANNAO, pes=64, name="a1")]
        assignments = scheduler._initial_assignment(workload, accs)
        heap_schedule = scheduler._list_schedule(assignments, accs)
        reference = scheduler._list_schedule_reference(assignments, accs)
        assert _timeline_tuples(heap_schedule) == _timeline_tuples(reference)

    def test_rankings_memo_respects_metric_mutation(self, cost_model):
        """Reassigning scheduler.metric must not serve stale rankings."""
        workloads = golden_scheduler.build_workloads()
        accs = golden_scheduler.build_sub_accelerators()
        mutated = HeraldScheduler(cost_model, metric="edp")
        mutated.schedule(workloads["chain"], accs)
        mutated.metric = "latency"
        remetered = mutated.schedule(workloads["chain"], accs)
        fresh = HeraldScheduler(cost_model, metric="latency").schedule(
            workloads["chain"], accs)
        assert _timeline_tuples(remetered) == _timeline_tuples(fresh)

    def test_golden_workloads(self, cost_model):
        """Direct heap-vs-reference comparison on the golden topologies."""
        workloads = golden_scheduler.build_workloads()
        accs = golden_scheduler.build_sub_accelerators()
        for workload in workloads.values():
            for ordering in ("breadth", "depth"):
                scheduler = HeraldScheduler(cost_model, ordering=ordering)
                assignments = scheduler._initial_assignment(workload, accs)
                heap_schedule = scheduler._list_schedule(assignments, accs)
                reference = scheduler._list_schedule_reference(assignments, accs)
                assert _timeline_tuples(heap_schedule) == \
                    _timeline_tuples(reference)


# ---------------------------------------------------------------------------
# Memo keying regressions (the shape-key bugfixes this PR pins)
# ---------------------------------------------------------------------------

class TestShapeKeyedMemoBugfix:
    """The mapping and reuse memos key on shape, not layer identity.

    Both memos were historically keyed on the full frozen ``Layer`` — whose
    ``__eq__``/``__hash__`` include ``name`` and ``model_name`` — so renamed
    same-shape layers (batches, repeated blocks, per-model clones) each paid a
    fresh mapper search and reuse analysis and each occupied a memo slot.
    """

    _SHAPE = dict(k=8, c=4, y=16, x=16, r=3, s=3)

    def test_renamed_layer_hits_same_mapping_entry(self):
        clear_mapping_cache()
        layer = conv2d("block1", model_name="net-a", **self._SHAPE)
        first = build_mapping(layer, NVDLA, 128)
        before = mapping_cache_info()
        second = build_mapping(layer.renamed("block9", model_name="net-b"),
                               NVDLA, 128)
        after = mapping_cache_info()
        assert second is first
        assert after.hits == before.hits + 1
        assert after.currsize == before.currsize == 1

    def test_mapping_cache_size_is_per_shape_not_per_name(self):
        clear_mapping_cache()
        layer = conv2d("base", **self._SHAPE)
        for index in range(6):
            build_mapping(layer.renamed(f"clone{index}",
                                        model_name=f"model{index}"),
                          NVDLA, 128)
        assert mapping_cache_info().currsize == 1
        assert mapping_cache_info().misses == 1

    def test_renamed_layer_hits_same_reuse_entry(self):
        clear_reuse_cache()
        layer = conv2d("block1", model_name="net-a", **self._SHAPE)
        first = analyse_layer_reuse(layer, NVDLA, 128, mib(1))
        second = analyse_layer_reuse(
            layer.renamed("block9", model_name="net-b"), NVDLA, 128, mib(1))
        assert second is first
        assert reuse_cache_size() == 1

    def test_clear_all_memos_covers_every_process_global_memo(self):
        model = CostModel(vectorized=True)
        layer = conv2d("seed", **self._SHAPE)
        build_mapping(layer, NVDLA, 128)
        analyse_layer_reuse(layer, NVDLA, 128, mib(1))
        model.layer_cost(layer, _sub())
        if batch_module.numpy_available():
            model.batch_layer_costs([layer], [_sub(SHIDIANNAO, name="v0")])
            assert len(batch_module._rows_memo) > 0
        assert mapping_cache_info().currsize > 0
        assert reuse_cache_size() > 0
        clear_all_memos(model)
        assert mapping_cache_info() == (0, 0, mapping_cache_info().maxsize, 0)
        assert reuse_cache_size() == 0
        assert len(batch_module._rows_memo) == 0
        assert model.cache_size() == 0


# ---------------------------------------------------------------------------
# Vectorised cost core (numpy array programs vs the scalar estimator)
# ---------------------------------------------------------------------------

def _bitwise_fields(cost):
    """reprs of every numeric field — bitwise float comparison, not ==."""
    return tuple(repr(value) for value in _cost_fields(cost))


class TestVectorisedCostCore:
    @given(
        layers=st.lists(_small_layers, min_size=1, max_size=10),
        pes=st.sampled_from([64, 128]),
        buffer_kib=st.sampled_from([256, 1024]),
        style_index=st.integers(min_value=0, max_value=len(ALL_STYLES)),
    )
    @settings(max_examples=60, deadline=None)
    def test_vectorised_table_is_bitwise_equal_to_scalar(self, layers, pes,
                                                         buffer_kib,
                                                         style_index):
        """Random layers x styles x hardware: both paths agree float for float.

        ``style_index == len(ALL_STYLES)`` draws the reconfigurable (RDA)
        configuration, whose per-style EDP argmin must also match the scalar
        first-on-tie semantics exactly.
        """
        if not batch_module.numpy_available():
            pytest.skip("numpy unavailable: only the scalar path exists")
        style = (None if style_index == len(ALL_STYLES)
                 else ALL_STYLES[style_index])
        acc = SubAcceleratorConfig(name="acc", dataflow=style, num_pes=pes,
                                   bandwidth_bytes_per_s=gbps(4),
                                   buffer_bytes=buffer_kib * 1024)
        scalar = CostModel(vectorized=False)
        vector = CostModel(vectorized=True)
        scalar_table = scalar.batch_layer_costs(layers, [acc])
        vector_table = vector.batch_layer_costs(layers, [acc])
        assert sorted(scalar_table) == sorted(vector_table)
        for entry, scalar_cost in scalar_table.items():
            assert _bitwise_fields(vector_table[entry]) == \
                _bitwise_fields(scalar_cost)
        assert (scalar.hits, scalar.misses) == (vector.hits, vector.misses)

    def test_forced_scalar_fallback_without_numpy(self):
        """REPRO_DISABLE_NUMPY pins the scalar path, results unchanged."""
        layers = [conv2d(f"c{i}", k=8 * (i + 1), c=4, y=16, x=16, r=3, s=3)
                  for i in range(9)]
        accs = [_sub(NVDLA, name="a0"), _sub(style=None, name="rda")]
        reference = CostModel(vectorized=False).batch_layer_costs(layers, accs)
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setenv("REPRO_DISABLE_NUMPY", "1")
            batch_module.reset_numpy_probe()
            try:
                assert not batch_module.numpy_available()
                forced = CostModel(vectorized=True)
                table = forced.batch_layer_costs(layers, accs)
            finally:
                patcher.undo()
                batch_module.reset_numpy_probe()
        assert sorted(table) == sorted(reference)
        for entry, cost in table.items():
            assert _bitwise_fields(cost) == _bitwise_fields(reference[entry])

    def test_golden_timelines_with_vectorised_model(self, monkeypatch,
                                                    golden_timelines):
        """The full 192-scenario golden corpus, re-run with vectorized=True."""
        if not batch_module.numpy_available():
            pytest.skip("numpy unavailable: only the scalar path exists")
        monkeypatch.setattr(golden_scheduler, "CostModel",
                            lambda: CostModel(vectorized=True))
        assert golden_scheduler.generate_timelines() == golden_timelines

    def test_dse_ranking_with_vectorised_model(self, monkeypatch):
        if not batch_module.numpy_available():
            pytest.skip("numpy unavailable: only the scalar path exists")
        golden = golden_scheduler.load_golden(golden_scheduler.DSE_FILE)
        monkeypatch.setattr(golden_scheduler, "CostModel",
                            lambda: CostModel(vectorized=True))
        assert golden_scheduler.run_dse() == golden


# ---------------------------------------------------------------------------
# Shared read-mostly pool cost table
# ---------------------------------------------------------------------------

def _result_summaries(results):
    return [(r.design.name, repr(r.latency_s), repr(r.energy_mj), repr(r.edp))
            for r in results]


class TestSharedPoolTable:
    def _tasks(self, tiny_chip, small_workload):
        return [EvaluationTask(i, design, small_workload)
                for i, design in enumerate(enumerate_fdas(tiny_chip))]

    def test_prewarmed_pool_ships_zero_entries_back(self, tiny_chip,
                                                    small_workload):
        """A prewarmed parent table is shared: no per-task merge-back."""
        tasks = self._tasks(tiny_chip, small_workload)
        model = CostModel()
        for task in tasks:
            model.prewarm(small_workload.unique_shape_layers(),
                          task.design.sub_accelerators)
        size_before = model.cache_size()
        backend = ProcessPoolBackend(jobs=2, cost_model=model)
        results = backend.run(tasks)
        assert backend.last_new_cache_entries == 0
        assert model.cache_size() == size_before
        serial = SerialBackend().run(tasks)
        assert _result_summaries(results) == _result_summaries(serial)

    def test_forced_shared_table_skips_merge_back_on_cold_model(
            self, tiny_chip, small_workload):
        """shared_table=True never ships worker entries, results unchanged."""
        tasks = self._tasks(tiny_chip, small_workload)
        model = CostModel()
        backend = ProcessPoolBackend(jobs=2, cost_model=model,
                                     shared_table=True)
        results = backend.run(tasks)
        assert model.cache_size() == 0
        assert backend.last_new_cache_entries == 0
        serial = SerialBackend().run(tasks)
        assert _result_summaries(results) == _result_summaries(serial)

    def test_forced_merge_back_on_prewarmed_model(self, tiny_chip,
                                                  small_workload):
        """shared_table=False pins the historical merge-back protocol."""
        tasks = self._tasks(tiny_chip, small_workload)
        model = CostModel()
        for task in tasks:
            model.prewarm(small_workload.unique_shape_layers(),
                          task.design.sub_accelerators)
        backend = ProcessPoolBackend(jobs=2, cost_model=model,
                                     shared_table=False)
        results = backend.run(tasks)
        # Workers recompute nothing (the shipped table covers every query),
        # so even the merge-back protocol returns zero new entries.
        assert backend.last_new_cache_entries == 0
        serial = SerialBackend().run(tasks)
        assert _result_summaries(results) == _result_summaries(serial)
