"""Property-based and exact tests of the resilient execution engine.

Three pinned invariants (the acceptance criteria of the fault-tolerance
layer), each checked over randomized inputs:

* **chaos transparency** — a seeded chaos run (crashes, hangs, transient
  errors) with a retry budget covering ``max_faults_per_task`` produces
  *bit-identical* design metrics to an undisturbed :class:`SerialBackend`
  run, because evaluations are pure functions of ``(design, workload)`` and
  the fault schedule is a pure function of ``(seed, task_id, attempt)``;
* **resume transparency** — a sweep interrupted at an arbitrary point and
  resumed from its :class:`SweepCheckpoint` produces results bit-identical
  to an uninterrupted run, and only re-executes the missing tasks;
* **degraded-mode honesty** — a ``partial_ok`` run with permanently doomed
  tasks ranks exactly the surviving subset: every survivor's metrics match
  the full run and their relative order is preserved.

Plus exact units for retry exhaustion, failure-kind classification, the
cache journal replay path, checkpoint key/version safety, and the real
process-pool recovery paths (broken pool rebuild, stall watchdog).
"""

from __future__ import annotations

import json
import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.builders import enumerate_fdas, make_hda, make_rda
from repro.core.dse import HeraldDSE
from repro.core.partitioner import PartitionSearch
from repro.core.scheduler import HeraldScheduler
from repro.dataflow.styles import NVDLA, SHIDIANNAO
from repro.exceptions import (
    CheckpointError,
    TaskExecutionError,
    TransientEvaluationError,
    WorkerCrash,
    WorkerHang,
)
from repro.exec import (
    ChaosBackend,
    ChaosSpec,
    EvaluationTask,
    PersistentCostCache,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    SweepCheckpoint,
    classify_failure,
    sweep_key_from,
)
from repro.maestro.cost import CostModel

#: One shared cost model: the same layer shapes repeat across examples, so
#: the memo keeps the property sweeps fast without affecting decisions
#: (layer costs are pure).
_COST_MODEL = CostModel()


def _metrics(results):
    """The deterministic slice of evaluation results (no wall clock)."""
    return [(r.design.name, r.latency_s, r.energy_mj, r.edp) for r in results]


@pytest.fixture(scope="module")
def task_bag(tiny_chip, small_workload):
    """A small, category-diverse bag of evaluation tasks."""
    designs = list(enumerate_fdas(tiny_chip))
    designs.append(make_rda(tiny_chip))
    designs.append(make_hda(tiny_chip, [NVDLA, SHIDIANNAO]))
    return [EvaluationTask(i, design, small_workload, category=design.kind.value)
            for i, design in enumerate(designs)]


@pytest.fixture(scope="module")
def baseline(task_bag):
    """Undisturbed serial results for the bag (the bit-identity reference)."""
    backend = SerialBackend(cost_model=_COST_MODEL)
    return _metrics(backend.run(task_bag))


# ---------------------------------------------------------------------------
# Property: chaos + retries == undisturbed serial, bit for bit
# ---------------------------------------------------------------------------
class TestChaosTransparency:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000),
           crash=st.floats(0.0, 0.4),
           hang=st.floats(0.0, 0.3),
           error=st.floats(0.0, 0.3),
           max_faults=st.integers(0, 2))
    def test_serial_chaos_matches_baseline(self, task_bag, baseline, seed,
                                           crash, hang, error, max_faults):
        spec = ChaosSpec(seed=seed, crash_rate=crash, hang_rate=hang,
                         error_rate=error, max_faults_per_task=max_faults)
        inner = SerialBackend(cost_model=_COST_MODEL,
                              retry_policy=RetryPolicy(max_retries=max_faults))
        chaotic = ChaosBackend(inner, spec)
        assert _metrics(chaotic.run(task_bag)) == baseline

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fault_schedule_is_order_independent(self, seed):
        spec = ChaosSpec(seed=seed, crash_rate=0.3, hang_rate=0.2,
                         error_rate=0.2)
        # Each (task, attempt) decision is hashed independently, so querying
        # in any order (or twice) yields the same schedule.
        forward = [spec.fault_for(t, a) for t in range(8) for a in range(3)]
        backward = [spec.fault_for(t, a)
                    for t in reversed(range(8)) for a in reversed(range(3))]
        assert forward == list(reversed(backward))

    def test_pool_simulated_chaos_matches_baseline(self, task_bag, baseline):
        spec = ChaosSpec(seed=7, crash_rate=0.35, hang_rate=0.2,
                         error_rate=0.2, max_faults_per_task=2)
        inner = ProcessPoolBackend(jobs=2, cost_model=CostModel(),
                                   retry_policy=RetryPolicy(max_retries=2))
        chaotic = ChaosBackend(inner, spec)
        assert _metrics(chaotic.run(task_bag)) == baseline

    def test_zero_rate_chaos_changes_nothing(self, task_bag, baseline):
        chaotic = ChaosBackend(SerialBackend(cost_model=_COST_MODEL),
                               ChaosSpec(seed=3))
        outcome = chaotic.run_resilient(task_bag)
        assert _metrics(outcome.ordered_results(task_bag)) == baseline
        assert outcome.retried_attempts == 0
        assert outcome.failures == ()


# ---------------------------------------------------------------------------
# Property: interrupt + resume == uninterrupted, re-running only the rest
# ---------------------------------------------------------------------------
class TestResumeTransparency:
    @settings(max_examples=20, deadline=None)
    @given(cut=st.integers(0, 5), flush_every=st.integers(1, 8))
    def test_resumed_sweep_is_bit_identical(self, tmp_path_factory, task_bag,
                                            baseline, cut, flush_every):
        path = str(tmp_path_factory.mktemp("ck") / "sweep.ckpt")
        cut = min(cut, len(task_bag))
        key = sweep_key_from({"bag": "task_bag"})

        # Phase 1: run a prefix, then "die" (drop the backend; run_resilient
        # flushed the checkpoint in its finally block).
        first = SweepCheckpoint(path, key, flush_every=flush_every)
        SerialBackend(cost_model=_COST_MODEL).run_resilient(
            task_bag[:cut], checkpoint=first)

        # Phase 2: a fresh process would reload and run the full bag.
        second = SweepCheckpoint(path, key, resume=True,
                                 flush_every=flush_every)
        assert second.loaded_records == cut
        outcome = SerialBackend(cost_model=_COST_MODEL).run_resilient(
            task_bag, checkpoint=second)
        assert outcome.resumed_tasks == cut
        assert outcome.executed_tasks == len(task_bag) - cut
        assert _metrics(outcome.ordered_results(task_bag)) == baseline

    def test_resumed_results_are_the_stored_objects(self, tmp_path, task_bag):
        # Stronger than metric equality: the resumed result is the object
        # the interrupted run computed — schedule, wall clock and all — so
        # even the non-deterministic fields survive the round trip.
        path = str(tmp_path / "sweep.ckpt")
        key = sweep_key_from("bag")
        first = SweepCheckpoint(path, key)
        ran = SerialBackend(cost_model=_COST_MODEL).run_resilient(
            task_bag[:2], checkpoint=first)
        second = SweepCheckpoint(path, key, resume=True)
        resumed = SerialBackend(cost_model=_COST_MODEL).run_resilient(
            task_bag[:2], checkpoint=second)
        assert resumed.executed_tasks == 0
        for task in task_bag[:2]:
            ours, theirs = resumed.results[task.task_id], ran.results[task.task_id]
            assert ours.scheduling_time_s == theirs.scheduling_time_s
            assert ours.latency_s == theirs.latency_s
            assert ours.energy_mj == theirs.energy_mj
            assert [e.cost for e in ours.schedule.entries] == \
                [e.cost for e in theirs.schedule.entries]

    def test_wrong_sweep_key_refuses_to_resume(self, tmp_path, task_bag):
        path = str(tmp_path / "sweep.ckpt")
        first = SweepCheckpoint(path, sweep_key_from({"pe_steps": 4}))
        SerialBackend(cost_model=_COST_MODEL).run_resilient(
            task_bag[:1], checkpoint=first)
        with pytest.raises(CheckpointError, match="different sweep"):
            SweepCheckpoint(path, sweep_key_from({"pe_steps": 8}), resume=True)

    def test_wrong_version_refuses_to_resume(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        path.write_bytes(pickle.dumps(
            {"version": 999, "sweep_key": "k", "completed": {}}))
        with pytest.raises(CheckpointError, match="version"):
            SweepCheckpoint(str(path), "k", resume=True)

    def test_corrupted_checkpoint_is_an_error_not_a_wrong_report(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        path.write_bytes(b"\x80\x04 definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="unreadable"):
            SweepCheckpoint(str(path), "k", resume=True)

    def test_missing_file_resumes_as_fresh_run(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "absent.ckpt"), "k",
                                     resume=True)
        assert checkpoint.loaded_records == 0
        assert len(checkpoint) == 0

    def test_without_resume_a_stale_file_is_overwritten(self, tmp_path,
                                                        task_bag):
        path = str(tmp_path / "sweep.ckpt")
        stale = SweepCheckpoint(path, "old-key")
        SerialBackend(cost_model=_COST_MODEL).run_resilient(
            task_bag[:2], checkpoint=stale)
        fresh = SweepCheckpoint(path, "new-key")
        SerialBackend(cost_model=_COST_MODEL).run_resilient(
            task_bag[:1], checkpoint=fresh)
        reread = SweepCheckpoint(path, "new-key", resume=True)
        assert reread.loaded_records == 1

    def test_flush_leaves_no_temp_files(self, tmp_path, task_bag):
        path = str(tmp_path / "sweep.ckpt")
        checkpoint = SweepCheckpoint(path, "k", flush_every=1)
        SerialBackend(cost_model=_COST_MODEL).run_resilient(
            task_bag[:3], checkpoint=checkpoint)
        assert checkpoint.flush_count >= 3
        assert sorted(p.name for p in tmp_path.iterdir()) == ["sweep.ckpt"]


# ---------------------------------------------------------------------------
# Property: partial_ok ranks exactly the surviving subset
# ---------------------------------------------------------------------------
class TestPartialRankings:
    @settings(max_examples=20, deadline=None)
    @given(doomed=st.sets(st.integers(0, 5), max_size=4))
    def test_survivors_are_a_rank_consistent_subset(self, task_bag, baseline,
                                                    doomed):
        doomed = {i for i in doomed if i < len(task_bag)}
        spec = ChaosSpec(seed=1, doomed_task_ids=frozenset(doomed))
        backend = ChaosBackend(
            SerialBackend(cost_model=_COST_MODEL,
                          retry_policy=RetryPolicy(max_retries=1)), spec)
        outcome = backend.run_resilient(task_bag, partial_ok=True)

        assert set(outcome.failed_task_ids) == doomed
        survivors = outcome.completed(task_bag)
        expected = [row for task, row in zip(task_bag, baseline)
                    if task.task_id not in doomed]
        assert _metrics([r for _, r in survivors]) == expected
        # Ranking consistency: ordering survivors by EDP gives the full
        # run's EDP order restricted to the survivors.
        by_edp = sorted((r.edp, t.task_id) for t, r in survivors)
        full_by_edp = [(edp, tid) for edp, tid in
                       sorted((row[3], task.task_id)
                              for task, row in zip(task_bag, baseline))
                       if tid not in doomed]
        assert by_edp == full_by_edp

    def test_all_tasks_doomed_yields_empty_results(self, task_bag):
        spec = ChaosSpec(seed=5, doomed_task_ids=frozenset(
            task.task_id for task in task_bag))
        backend = ChaosBackend(SerialBackend(cost_model=_COST_MODEL), spec)
        outcome = backend.run_resilient(task_bag, partial_ok=True)
        assert outcome.results == {}
        assert len(outcome.failures) == len(task_bag)


# ---------------------------------------------------------------------------
# Exact units: retry exhaustion and failure classification
# ---------------------------------------------------------------------------
class TestRetryExhaustion:
    def test_doomed_task_exhausts_exact_attempt_budget(self, task_bag):
        spec = ChaosSpec(seed=2, doomed_task_ids=frozenset({1}))
        backend = ChaosBackend(
            SerialBackend(cost_model=_COST_MODEL,
                          retry_policy=RetryPolicy(max_retries=2)), spec)
        with pytest.raises(TaskExecutionError) as excinfo:
            backend.run(task_bag)
        failures = excinfo.value.failures
        assert len(failures) == 1
        failure = failures[0]
        assert failure.task_id == 1
        assert failure.attempts == 3  # max_retries + 1, exactly
        assert failure.kind == "error"  # doomed with all-zero rates
        assert "chaos-injected transient error" in failure.message
        assert failure.category == task_bag[1].category

    def test_partial_ok_returns_instead_of_raising(self, task_bag):
        spec = ChaosSpec(seed=2, doomed_task_ids=frozenset({1}))
        backend = ChaosBackend(
            SerialBackend(cost_model=_COST_MODEL,
                          retry_policy=RetryPolicy(max_retries=0)), spec)
        outcome = backend.run_resilient(task_bag, partial_ok=True)
        assert outcome.failed_task_ids == (1,)
        assert outcome.failures[0].attempts == 1

    def test_failure_summary_is_json_serializable(self, task_bag):
        spec = ChaosSpec(seed=2, doomed_task_ids=frozenset({0}))
        backend = ChaosBackend(SerialBackend(cost_model=_COST_MODEL), spec)
        outcome = backend.run_resilient(task_bag[:1], partial_ok=True)
        row = outcome.failures[0].summary()
        assert json.loads(json.dumps(row)) == row

    def test_retry_policy_validation(self):
        from repro.exceptions import SearchError
        with pytest.raises(SearchError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(SearchError):
            RetryPolicy(task_timeout_s=0.0)
        with pytest.raises(SearchError):
            RetryPolicy(backoff_base_s=-0.1)

    def test_backoff_schedule_is_deterministic_exponential(self):
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.5)
        assert [policy.backoff_s(k) for k in range(1, 4)] == [0.5, 1.0, 2.0]
        assert policy.backoff_s(0) == 0.0


class TestFailureClassification:
    def test_exception_to_kind_mapping(self):
        assert classify_failure(WorkerCrash("x")) == "crash"
        assert classify_failure(WorkerHang("x")) == "timeout"
        assert classify_failure(TransientEvaluationError("x")) == "error"
        assert classify_failure(ValueError("x")) == "error"

    def test_chaos_hang_is_recorded_as_timeout(self, task_bag):
        # The simulated hang must classify like the real stall watchdog.
        spec = ChaosSpec(seed=0, hang_rate=1.0, doomed_task_ids=frozenset({0}))
        backend = ChaosBackend(SerialBackend(cost_model=_COST_MODEL), spec)
        outcome = backend.run_resilient(task_bag[:1], partial_ok=True)
        assert outcome.failures[0].kind == "timeout"
        assert "chaos-injected hang" in outcome.failures[0].message

    def test_chaos_crash_is_recorded_as_crash(self, task_bag):
        spec = ChaosSpec(seed=0, crash_rate=1.0,
                         doomed_task_ids=frozenset({0}))
        backend = ChaosBackend(SerialBackend(cost_model=_COST_MODEL), spec)
        outcome = backend.run_resilient(task_bag[:1], partial_ok=True)
        assert outcome.failures[0].kind == "crash"

    def test_programming_errors_are_not_retried(self, small_workload):
        # A TypeError from a broken design must surface as a traceback, not
        # burn the retry budget.
        backend = SerialBackend(cost_model=_COST_MODEL,
                                retry_policy=RetryPolicy(max_retries=2))
        bad = EvaluationTask(0, object(), small_workload)  # type: ignore[arg-type]
        with pytest.raises(Exception) as excinfo:
            backend.run([bad])
        assert not isinstance(excinfo.value, TaskExecutionError)


# ---------------------------------------------------------------------------
# Real process-pool recovery (integration: crashes, hangs, broken pools)
# ---------------------------------------------------------------------------
class TestRealPoolRecovery:
    def test_real_crashes_are_survived_bit_identically(self, task_bag,
                                                       baseline):
        spec = ChaosSpec(seed=11, crash_rate=0.5, max_faults_per_task=1,
                         real_faults=True)
        # The schedule must actually contain a crash for the test to bite.
        assert any(spec.fault_for(task.task_id, 0) == "crash"
                   for task in task_bag)
        inner = ProcessPoolBackend(jobs=2, cost_model=CostModel(),
                                   retry_policy=RetryPolicy(max_retries=1))
        chaotic = ChaosBackend(inner, spec)
        assert _metrics(chaotic.run(task_bag)) == baseline
        assert inner.pool_rebuilds >= 1

    def test_stall_watchdog_recovers_real_hang(self, task_bag, baseline):
        spec = ChaosSpec(seed=4, hang_rate=0.45, max_faults_per_task=1,
                         real_faults=True, hang_sleep_s=20.0)
        assert any(spec.fault_for(task.task_id, 0) == "hang"
                   for task in task_bag)
        inner = ProcessPoolBackend(
            jobs=2, cost_model=CostModel(),
            retry_policy=RetryPolicy(max_retries=1, task_timeout_s=1.0))
        chaotic = ChaosBackend(inner, spec)
        assert _metrics(chaotic.run(task_bag)) == baseline
        assert inner.pool_rebuilds >= 1

    def test_pool_failure_records_match_serial_records(self, task_bag):
        # Terminal failures must be identical no matter which backend lost
        # the task (same kind, same attempts, same message).
        spec = ChaosSpec(seed=2, doomed_task_ids=frozenset({0, 3}))
        serial = ChaosBackend(SerialBackend(cost_model=_COST_MODEL), spec)
        serial_out = serial.run_resilient(task_bag, partial_ok=True)
        pool = ChaosBackend(ProcessPoolBackend(jobs=2, cost_model=CostModel()),
                            spec)
        pool_out = pool.run_resilient(task_bag, partial_ok=True)
        assert sorted(f.summary().items() for f in pool_out.failures) == \
            sorted(f.summary().items() for f in serial_out.failures)


# ---------------------------------------------------------------------------
# Exact units: crash-safe cache journal
# ---------------------------------------------------------------------------
class TestCacheJournal:
    def _run_once(self, path, task_bag, journal_every=1):
        cache = PersistentCostCache(path, journal_every=journal_every)
        backend = SerialBackend(cost_model=CostModel(), cache=cache)
        backend.run(task_bag[:1])
        return cache

    def test_journal_lines_appended_per_entry(self, tmp_path, task_bag):
        path = str(tmp_path / "cache.json")
        cache = self._run_once(path, task_bag)
        lines = open(cache.journal_path).read().splitlines()
        assert not lines, "save() must fold and truncate the journal"
        # Re-run against a cold model but without saving: entries journal.
        cache2 = PersistentCostCache(str(tmp_path / "other.json"),
                                     journal_every=1)
        model = CostModel()
        cache2.attach(model)
        backend = SerialBackend(cost_model=model)
        backend.run(task_bag[:1])
        journalled = open(cache2.journal_path).read().splitlines()
        assert len(journalled) == model.cache_size()

    def test_journal_replay_after_simulated_kill(self, tmp_path, task_bag):
        # A run that journalled entries but was killed before save():
        # the next load replays the journal into the cache.
        path = str(tmp_path / "cache.json")
        cache = PersistentCostCache(path, journal_every=1)
        model = CostModel()
        cache.attach(model)
        SerialBackend(cost_model=model).run(task_bag[:1])
        entries = model.cache_size()
        assert entries > 0

        reloaded = PersistentCostCache(path, journal_every=1)
        assert reloaded.journal_replayed == entries
        assert len(reloaded) == entries
        warm = CostModel()
        assert reloaded.warm(warm) == entries

    def test_torn_final_journal_line_is_skipped(self, tmp_path, task_bag):
        path = str(tmp_path / "cache.json")
        cache = PersistentCostCache(path, journal_every=1)
        model = CostModel()
        cache.attach(model)
        SerialBackend(cost_model=model).run(task_bag[:1])
        entries = model.cache_size()
        with open(cache.journal_path, "a") as handle:
            handle.write('{"torn": ')  # the write the crash interrupted
        reloaded = PersistentCostCache(path, journal_every=1)
        assert reloaded.journal_replayed == entries

    def test_save_truncates_journal_and_keeps_entries(self, tmp_path,
                                                      task_bag):
        path = str(tmp_path / "cache.json")
        cache = PersistentCostCache(path, journal_every=1)
        model = CostModel()
        cache.attach(model)
        SerialBackend(cost_model=model).run(task_bag[:1])
        cache.capture(model)
        cache.save()
        assert os.path.getsize(cache.journal_path) == 0
        assert PersistentCostCache(path).warm(CostModel()) == model.cache_size()

    def test_corrupted_cache_increments_fallback_counter(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = PersistentCostCache(str(path))
        assert cache.corrupted
        assert cache.fallback_count == 1
        assert "fallback" in cache.describe()

    def test_hook_not_shipped_to_workers(self, tmp_path, task_bag):
        # The journal hook is parent-process state: a pickled cost model
        # must not carry it, or pool workers would double-journal.
        cache = PersistentCostCache(str(tmp_path / "cache.json"),
                                    journal_every=1)
        model = CostModel()
        cache.attach(model)
        assert model.new_entry_hook is not None
        clone = pickle.loads(pickle.dumps(model))
        assert clone.new_entry_hook is None


# ---------------------------------------------------------------------------
# Upper layers: DSE and fleet degraded modes
# ---------------------------------------------------------------------------
class TestUpperLayers:
    def _dse(self, backend):
        model = backend.cost_model
        scheduler = HeraldScheduler(model)
        search = PartitionSearch(cost_model=model, scheduler=scheduler,
                                 pe_steps=2, bw_steps=1)
        return HeraldDSE(cost_model=model, scheduler=scheduler,
                         partition_search=search, backend=backend)

    def test_partial_dse_reports_failures(self, small_workload, tiny_chip):
        spec = ChaosSpec(seed=6, doomed_task_ids=frozenset({0}))
        backend = ChaosBackend(SerialBackend(cost_model=CostModel()), spec)
        space = self._dse(backend).explore(small_workload, tiny_chip,
                                           include_three_way=False,
                                           partial_ok=True)
        assert len(space.failures) == 1
        assert space.failure_rows()[0]["task_id"] == 0
        assert "WARNING" in space.describe()

    def test_checkpointed_dse_resumes_bit_identically(self, small_workload,
                                                      tiny_chip, tmp_path):
        path = str(tmp_path / "dse.ckpt")
        key = sweep_key_from({"sweep": "dse"})
        clean = self._dse(SerialBackend(cost_model=CostModel())).explore(
            small_workload, tiny_chip, include_three_way=False)

        first = self._dse(SerialBackend(cost_model=CostModel())).explore(
            small_workload, tiny_chip, include_three_way=False,
            checkpoint=SweepCheckpoint(path, key))
        assert first.executed_tasks == len(first.points)

        resumed = self._dse(SerialBackend(cost_model=CostModel())).explore(
            small_workload, tiny_chip, include_three_way=False,
            checkpoint=SweepCheckpoint(path, key, resume=True))
        assert resumed.executed_tasks == 0
        assert resumed.resumed_tasks == len(clean.points)
        assert ([(p.design.name, p.latency_s, p.energy_mj)
                 for p in resumed.points]
                == [(p.design.name, p.latency_s, p.energy_mj)
                    for p in clean.points])

    def test_fleet_partial_reports_failed_chips(self, tiny_chip,
                                                small_workload):
        from repro.accel.builders import make_fda
        from repro.serve import Fleet, FleetSimulator, StreamSpec
        from repro.serve.workload import StreamingWorkload

        design = make_fda(tiny_chip, NVDLA)
        fleet = Fleet.homogeneous(design, 2)
        model_name = small_workload.entries[0][0]
        streaming = StreamingWorkload(
            "mini", streams=[StreamSpec(model_name, fps=100.0, frames=2)],
            models={model_name: small_workload.model_graph(model_name)})
        spec = ChaosSpec(seed=0, doomed_task_ids=frozenset({1}))
        backend = ChaosBackend(SerialBackend(cost_model=CostModel()), spec)
        simulator = FleetSimulator(backend=backend)
        result = simulator.simulate(streaming, fleet, partial_ok=True)
        assert len(result.report.failed_chips) == 1
        assert not result.report.meets_sla
        assert "failed_chips" in result.report.summary()
        assert "WARNING" in result.report.describe()


# ---------------------------------------------------------------------------
# CLI: checkpoint/resume and retry flags end to end
# ---------------------------------------------------------------------------
class TestResilienceCLI:
    def test_resume_requires_checkpoint(self, capsys):
        from repro.cli import main
        assert main(["dse", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_online_rejects_checkpoint(self, capsys):
        from repro.cli import main
        assert main(["fleet", "--online", "--checkpoint", "x.ckpt"]) == 2
        assert "no task bag" in capsys.readouterr().err

    def test_schedule_spec_rejects_retry_knobs(self):
        from repro.exceptions import SpecError
        from repro.experiment.spec import experiment_from_spec
        with pytest.raises(SpecError, match="exec.max_retries"):
            experiment_from_spec({"kind": "schedule",
                                  "exec": {"max_retries": 1}})
        with pytest.raises(SpecError, match="exec.partial_ok"):
            experiment_from_spec({"kind": "serve",
                                  "exec": {"partial_ok": True}})

    def test_exec_settings_compile_to_retry_policy(self):
        from repro.experiment.spec import experiment_from_spec
        spec = experiment_from_spec(
            {"kind": "dse",
             "exec": {"max_retries": 1, "task_timeout_s": 2.0,
                      "partial_ok": True}})
        policy = spec.exec_settings.retry_policy()
        assert policy == RetryPolicy(max_retries=1, task_timeout_s=2.0)
        assert spec.exec_settings.partial_ok
        assert experiment_from_spec(
            {"kind": "dse"}).exec_settings.retry_policy() is None

    def test_dse_checkpoint_resume_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiment.report import compare_reports, load_report

        ckpt = str(tmp_path / "dse.ckpt")
        argv = ["dse", "--workload", "arvr-a", "--chip", "edge",
                "--pe-steps", "4", "--bw-steps", "2", "--checkpoint", ckpt]
        assert main(argv + ["--max-retries", "1",
                            "--report", str(tmp_path / "a.json")]) == 0
        assert main(argv + ["--resume",
                            "--report", str(tmp_path / "b.json")]) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        comparison = compare_reports(load_report(str(tmp_path / "b.json")),
                                     load_report(str(tmp_path / "a.json")))
        assert comparison.ok
        assert all(delta.delta == 0.0 for delta in comparison.deltas)
        assert not comparison.missing and not comparison.added
