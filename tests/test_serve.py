"""Tests for the streaming serving subsystem (traces, simulator, SLA, golden).

Four contracts are pinned here:

1. **Trace determinism and shape.**  Arrival traces are pure functions of
   their spec (seeded jitter included), time-dilate correctly under rate
   scaling, and expand into release/deadline maps aligned with the workload's
   instance ids.

2. **Batch equivalence.**  The online scheduling path fed an all-zero release
   trace reproduces the *batch* golden corpus (192 scenarios generated from
   the seed implementation) bit-for-bit — streaming support must not perturb
   a single batch scheduling decision.

3. **Streaming goldens.**  The chain/diamond/UNet x {uniform, jittered} x
   metric x load-balance matrix (``tests/golden/streaming_timelines.json``)
   pins the online path's timelines and SLA summaries exactly, and a
   4-worker process pool reproduces the serial results.

4. **SLA objective.**  ``metric="sla"`` ranks zero-miss partitions ahead of
   deadline-missing ones and breaks ties on p99 tail latency, in both
   :class:`PartitionSearch` and :meth:`DSEResult.best`.
"""

from __future__ import annotations

import pickle

import pytest

import golden_scheduler
from repro.core import GreedyScheduler, HeraldScheduler, PartitionSearch
from repro.core.dse import DesignSpacePoint, DSEResult
from repro.core.evaluator import evaluate_design, streaming_parts
from repro.core.schedule import Schedule
from repro.dataflow.styles import NVDLA, SHIDIANNAO
from repro.exceptions import SchedulingError, WorkloadError
from repro.exec import EvaluationTask, ProcessPoolBackend, SerialBackend
from repro.maestro.cost import CostModel
from repro.models.graph import ModelGraph
from repro.models.layer import conv2d, fc, pwconv
from repro.serve import (
    MODEL_TARGET_FPS,
    ServingSimulator,
    StreamSpec,
    StreamingWorkload,
    streaming_suite,
    sustained_fps,
)
from repro.units import seconds_to_cycles
from repro.workloads.spec import WorkloadSpec


def _timeline(schedule):
    return [(e.instance_id, e.layer_index, e.sub_accelerator, e.start_cycle,
             e.finish_cycle) for e in schedule.entries]


def _mini_models():
    neta = ModelGraph.from_layers("neta", [
        conv2d("c1", k=16, c=3, y=34, x=34, r=3, s=3),
        pwconv("p1", k=32, c=16, y=32, x=32),
        fc("f", k=10, c=32),
    ])
    netb = ModelGraph.from_layers("netb", [
        pwconv("p1", k=64, c=32, y=16, x=16),
        fc("f", k=10, c=64),
    ])
    return neta, netb


def _mini_streaming(jitter_s: float = 0.0, fps_a: float = 2000.0,
                    fps_b: float = 4000.0) -> StreamingWorkload:
    neta, netb = _mini_models()
    return StreamingWorkload("mini-stream", streams=[
        StreamSpec("neta", fps=fps_a, frames=3, jitter_s=jitter_s, seed=7),
        StreamSpec("netb", fps=fps_b, frames=4, phase_s=1e-4),
    ], models={"neta": neta, "netb": netb})


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------

class TestStreamSpec:
    def test_periodic_release_times(self):
        spec = StreamSpec("m", fps=100.0, frames=3)
        assert spec.release_times_s() == (0.0, 0.01, 0.02)

    def test_phase_offsets_every_frame(self):
        spec = StreamSpec("m", fps=100.0, frames=2, phase_s=0.004)
        assert spec.release_times_s() == (0.004, 0.014)

    def test_jitter_is_deterministic_and_bounded(self):
        spec = StreamSpec("m", fps=100.0, frames=50, jitter_s=0.002, seed=5)
        first = spec.release_times_s()
        assert first == spec.release_times_s()
        for index, release in enumerate(first):
            nominal = index * 0.01
            assert abs(release - nominal) <= 0.002 + 1e-12
            assert release >= 0.0

    def test_different_seeds_or_models_draw_different_jitter(self):
        base = StreamSpec("m", fps=100.0, frames=10, jitter_s=0.002, seed=5)
        other_seed = StreamSpec("m", fps=100.0, frames=10, jitter_s=0.002, seed=6)
        other_model = StreamSpec("n", fps=100.0, frames=10, jitter_s=0.002, seed=5)
        assert base.release_times_s() != other_seed.release_times_s()
        assert base.release_times_s() != other_model.release_times_s()

    def test_default_deadline_is_one_period(self):
        assert StreamSpec("m", fps=50.0, frames=1).effective_deadline_s == \
            pytest.approx(0.02)
        assert StreamSpec("m", fps=50.0, frames=1,
                          deadline_s=0.005).effective_deadline_s == 0.005

    def test_scaled_is_a_uniform_time_dilation(self):
        spec = StreamSpec("m", fps=100.0, frames=3, phase_s=0.004,
                          jitter_s=0.001, deadline_s=0.02)
        fast = spec.scaled(2.0)
        assert fast.fps == pytest.approx(200.0)
        assert fast.phase_s == pytest.approx(0.002)
        assert fast.jitter_s == pytest.approx(0.0005)
        assert fast.deadline_s == pytest.approx(0.01)
        # Jitter-free releases scale exactly.
        jitterless = StreamSpec("m", fps=100.0, frames=3, phase_s=0.004)
        scaled = jitterless.scaled(2.0)
        for slow, quick in zip(jitterless.release_times_s(),
                               scaled.release_times_s()):
            assert quick == pytest.approx(slow / 2.0)

    @pytest.mark.parametrize("kwargs", [
        {"fps": 0.0}, {"fps": -1.0}, {"frames": 0}, {"phase_s": -0.1},
        {"jitter_s": -0.1}, {"deadline_s": 0.0},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        base = {"model_name": "m", "fps": 30.0, "frames": 2}
        base.update(kwargs)
        with pytest.raises(WorkloadError):
            StreamSpec(**base)


class TestStreamingWorkload:
    def test_expansion_ids_align_with_release_map(self):
        streaming = _mini_streaming()
        spec = streaming.to_workload_spec()
        instance_ids = {instance.instance_id for instance in spec.instances()}
        releases = streaming.release_times_s()
        deadlines = streaming.deadlines_s()
        assert set(releases) == instance_ids
        assert set(deadlines) == instance_ids
        for instance_id, release in releases.items():
            assert deadlines[instance_id] > release

    def test_duplicate_model_streams_rejected(self):
        neta, _ = _mini_models()
        with pytest.raises(WorkloadError):
            StreamingWorkload("dup", streams=[
                StreamSpec("neta", fps=10.0, frames=1),
                StreamSpec("neta", fps=20.0, frames=1),
            ], models={"neta": neta})

    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            StreamingWorkload("empty", streams=[])

    def test_pickle_round_trip_preserves_traces(self):
        streaming = _mini_streaming(jitter_s=0.0005)
        clone = pickle.loads(pickle.dumps(streaming))
        assert clone.release_times_s() == streaming.release_times_s()
        assert clone.deadlines_s() == streaming.deadlines_s()
        assert clone._spec_memo is None

    def test_streaming_parts_duck_typing(self):
        streaming = _mini_streaming()
        spec, detected = streaming_parts(streaming)
        assert isinstance(spec, WorkloadSpec)
        assert detected is streaming
        plain = WorkloadSpec(name="w", entries=[("neta", 1)],
                             models={"neta": _mini_models()[0]})
        assert streaming_parts(plain) == (plain, None)

    def test_cycle_conversion_lives_on_the_workload(self):
        streaming = _mini_streaming()
        clock = 2.0e9
        releases = streaming.release_cycles(clock)
        deadlines = streaming.deadline_cycles(clock)
        for instance_id, release_s in streaming.release_times_s().items():
            assert releases[instance_id] == pytest.approx(release_s * clock)
        for instance_id, deadline_s in streaming.deadlines_s().items():
            assert deadlines[instance_id] == pytest.approx(deadline_s * clock)

    def test_streaming_suite_uses_fps_targets_and_folds_batches(self):
        streaming = streaming_suite("arvr-a", frames=2)
        by_model = {stream.model_name: stream for stream in streaming.streams}
        # arvr-a: resnet50 x2, unet x4, mobilenet_v2 x4 (Table II).
        resnet = by_model["resnet50"]
        assert resnet.fps == pytest.approx(2 * MODEL_TARGET_FPS["resnet50"])
        assert resnet.frames == 4
        # Folding batches must keep the single-source deadline.
        assert resnet.effective_deadline_s == \
            pytest.approx(1.0 / MODEL_TARGET_FPS["resnet50"])


# ---------------------------------------------------------------------------
# Online scheduler semantics
# ---------------------------------------------------------------------------

class TestOnlineScheduling:
    @pytest.fixture()
    def accs(self):
        return golden_scheduler.build_sub_accelerators()

    def test_releases_delay_starts(self, cost_model, accs):
        streaming = _mini_streaming()
        spec = streaming.to_workload_spec()
        clock = accs[0].clock_hz
        releases = {instance_id: seconds_to_cycles(release, clock)
                    for instance_id, release in
                    streaming.release_times_s().items()}
        scheduler = HeraldScheduler(cost_model)
        schedule = scheduler.schedule(spec, accs, release_cycles=releases)
        for entry in schedule.entries:
            assert entry.start_cycle >= releases[entry.instance_id] - 1e-6

    def test_unknown_instance_in_release_map_rejected(self, cost_model, accs):
        streaming = _mini_streaming()
        spec = streaming.to_workload_spec()
        with pytest.raises(SchedulingError):
            HeraldScheduler(cost_model).schedule(
                spec, accs, release_cycles={"ghost#0": 0.0})

    def test_negative_release_rejected(self, cost_model, accs):
        streaming = _mini_streaming()
        spec = streaming.to_workload_spec()
        with pytest.raises(SchedulingError):
            HeraldScheduler(cost_model).schedule(
                spec, accs, release_cycles={"neta#0": -1.0})

    def test_zero_release_trace_matches_batch_bit_for_bit(self, cost_model, accs):
        """All-releases-at-zero is the batch path, on every golden topology."""
        for workload in golden_scheduler.build_workloads().values():
            zero = {instance.instance_id: 0.0
                    for instance in workload.instances()}
            for post in (True, False):
                scheduler = HeraldScheduler(cost_model,
                                            enable_post_processing=post)
                assert _timeline(scheduler.schedule(workload, accs,
                                                    release_cycles=zero)) == \
                    _timeline(scheduler.schedule(workload, accs))

    def test_validation_catches_release_violation(self, accs):
        schedule = Schedule(sub_accelerator_names=(accs[0].name,))
        layer = fc("f", k=4, c=4)
        cost = CostModel().layer_cost(layer, accs[0])
        schedule.instance_predecessors = {"m#0": (frozenset(),)}
        schedule.instance_release_cycles = {"m#0": 500.0}
        from repro.core.schedule import ScheduledLayer
        schedule.entries.append(ScheduledLayer(
            layer=layer, instance_id="m#0", layer_index=0,
            sub_accelerator=accs[0].name, start_cycle=100.0,
            finish_cycle=100.0 + cost.latency_cycles, cost=cost))
        with pytest.raises(SchedulingError, match="release"):
            schedule.validate()

    def test_greedy_scheduler_validates_release_map_like_herald(
            self, cost_model, accs):
        """Both schedulers reject the same invalid maps — a typo'd id must
        not be silently treated as released-at-zero by one of them."""
        spec = _mini_streaming().to_workload_spec()
        for scheduler in (HeraldScheduler(cost_model),
                          GreedyScheduler(cost_model)):
            with pytest.raises(SchedulingError):
                scheduler.schedule(spec, accs,
                                   release_cycles={"resnet50#00": 0.0})
            with pytest.raises(SchedulingError):
                scheduler.schedule(spec, accs,
                                   release_cycles={"neta#0": -5.0})

    def test_greedy_scheduler_honours_releases(self, cost_model, accs):
        streaming = _mini_streaming()
        spec = streaming.to_workload_spec()
        clock = accs[0].clock_hz
        releases = {instance_id: seconds_to_cycles(release, clock)
                    for instance_id, release in
                    streaming.release_times_s().items()}
        schedule = GreedyScheduler(cost_model).schedule(
            spec, accs, release_cycles=releases)
        for entry in schedule.entries:
            assert entry.start_cycle >= releases[entry.instance_id] - 1e-6

    def test_frame_summary_of_empty_schedule_is_zeroed(self):
        schedule = Schedule(sub_accelerator_names=("a",))
        summary = schedule.frame_summary()
        assert summary["frames"] == 0.0
        assert summary["deadline_miss_rate"] == 0.0


# ---------------------------------------------------------------------------
# Simulator and sustained FPS
# ---------------------------------------------------------------------------

class TestServingSimulator:
    @pytest.fixture()
    def accs(self):
        return golden_scheduler.build_sub_accelerators()

    def test_report_covers_every_stream_and_frame(self, cost_model, accs):
        streaming = _mini_streaming()
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        result = simulator.simulate(streaming, accs)
        report = result.report
        assert [stats.model_name for stats in report.streams] == ["neta", "netb"]
        assert report.total_frames == streaming.total_frames == 7
        for stats in report.streams:
            assert stats.p50_latency_s <= stats.p95_latency_s <= stats.p99_latency_s
            assert stats.p99_latency_s <= stats.max_latency_s
            assert 0.0 <= stats.deadline_miss_rate <= 1.0
            assert stats.dropped_frames <= stats.missed_frames

    def test_widely_spaced_frames_have_isolated_latency(self, cost_model, accs):
        """At a very low rate each frame runs alone: latency == isolated
        inference latency for every frame of the stream."""
        neta, _ = _mini_models()
        streaming = StreamingWorkload("iso", streams=[
            StreamSpec("neta", fps=1.0, frames=3)], models={"neta": neta})
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        result = simulator.simulate(streaming, accs)
        latencies = sorted(result.schedule.frame_latencies_s().values())
        assert latencies[-1] - latencies[0] < 1e-9
        stats = result.report.streams[0]
        assert stats.missed_frames == 0
        assert stats.backlogged_frames == 0

    def test_simulation_is_deterministic(self, cost_model, accs):
        streaming = _mini_streaming(jitter_s=0.0003)
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        first = simulator.simulate(streaming, accs)
        second = simulator.simulate(streaming, accs)
        assert _timeline(first.schedule) == _timeline(second.schedule)
        assert first.report.summary() == second.report.summary()

    def test_overloaded_stream_backlogs_and_drops(self, cost_model, accs):
        streaming = _mini_streaming(fps_a=5e6, fps_b=5e6)  # 200-cycle periods
        simulator = ServingSimulator(HeraldScheduler(cost_model),
                                     drop_deadline_factor=1.0)
        report = simulator.simulate(streaming, accs).report
        assert report.missed_frames > 0
        assert report.backlogged_frames > 0
        assert report.dropped_frames == report.missed_frames
        assert not report.meets_sla

    def test_reordered_arrivals_do_not_fabricate_backlog(self, cost_model,
                                                         accs):
        """When jitter reorders two arrivals, a frame that runs instantly
        relative to the stream's next *in-time* arrival is not backlogged —
        comparing against the next frame *index* would brand every reordered
        pair as backlog regardless of scheduler speed."""
        neta, _ = _mini_models()
        # Seed 0 releases frame 2 (t=1.50) before frame 1 (t=1.82), with all
        # in-time gaps >= 0.32 s — orders of magnitude above the ~ms inference
        # time, so every frame finishes well before the next in-time arrival.
        streaming = StreamingWorkload("reorder", streams=[
            StreamSpec("neta", fps=1.0, frames=3, jitter_s=0.9, seed=0)],
            models={"neta": neta})
        releases = streaming.streams[0].release_times_s()
        assert sorted(range(3), key=lambda i: releases[i]) != [0, 1, 2], \
            "seed no longer reorders; pick another"
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        report = simulator.simulate(streaming, accs).report
        assert report.backlogged_frames == 0

    def test_report_summary_is_strict_json(self, cost_model, accs):
        import json
        report = ServingSimulator(HeraldScheduler(cost_model)).simulate(
            _mini_streaming(), accs).report
        json.dumps(report.summary(), allow_nan=False)


class TestSustainedFps:
    @pytest.fixture()
    def accs(self):
        return golden_scheduler.build_sub_accelerators()

    def test_feasible_at_upper_bracket_returns_hi(self, cost_model, accs):
        neta, _ = _mini_models()
        streaming = StreamingWorkload("easy", streams=[
            StreamSpec("neta", fps=0.5, frames=2)], models={"neta": neta})
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        result = sustained_fps(simulator, streaming, accs, lo=0.5, hi=2.0,
                               iterations=2)
        assert result.factor == pytest.approx(2.0)
        assert result.fps_per_stream["neta"] == pytest.approx(1.0)

    def test_infeasible_at_lower_bracket_returns_zero(self, cost_model, accs):
        neta, _ = _mini_models()
        streaming = StreamingWorkload("hard", streams=[
            StreamSpec("neta", fps=1e7, frames=4)], models={"neta": neta})
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        result = sustained_fps(simulator, streaming, accs, lo=0.9, hi=2.0,
                               iterations=2)
        assert result.factor == 0.0
        assert all(fps == 0.0 for fps in result.fps_per_stream.values())

    def test_bisection_lands_between_brackets(self, cost_model, accs):
        streaming = _mini_streaming()
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        result = sustained_fps(simulator, streaming, accs, lo=1e-4, hi=64.0,
                               iterations=8)
        if 0.0 < result.factor < 64.0:
            # The found factor must itself meet the SLA.
            report = simulator.simulate(streaming.scaled(result.factor),
                                        accs).report
            assert report.meets_sla

    def test_probe_budget_is_exposed_not_hard_coded(self, cost_model, accs):
        """The probe count is a caller decision: ``iterations`` bounds the
        bisection exactly (bracket probes + at most ``iterations`` more)."""
        streaming = _mini_streaming()
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        for iterations in (1, 3):
            result = sustained_fps(simulator, streaming, accs, lo=1e-4,
                                   hi=64.0, iterations=iterations)
            assert result.evaluations <= 2 + iterations

    def test_tolerance_stops_the_bisection_early(self, cost_model, accs):
        streaming = _mini_streaming()
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        exhaustive = sustained_fps(simulator, streaming, accs, lo=1e-4,
                                   hi=64.0, iterations=10)
        coarse = sustained_fps(simulator, streaming, accs, lo=1e-4, hi=64.0,
                               iterations=10, tolerance=32.0)
        if 0.0 < exhaustive.factor < 64.0:
            # A bracket as wide as the tolerance stops immediately after the
            # bracket probes plus at most the probes needed to shrink to it.
            assert coarse.evaluations < exhaustive.evaluations
            # The early stop still returns a feasible operating point.
            report = simulator.simulate(streaming.scaled(coarse.factor),
                                        accs).report
            assert report.meets_sla

    def test_already_sustained_skips_the_bisection(self, cost_model, accs):
        """Edge: feasible at the upper bracket — exactly two probes run."""
        neta, _ = _mini_models()
        streaming = StreamingWorkload("easy2", streams=[
            StreamSpec("neta", fps=0.25, frames=2)], models={"neta": neta})
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        result = sustained_fps(simulator, streaming, accs, lo=0.5, hi=2.0,
                               iterations=8)
        assert result.factor == pytest.approx(2.0)
        assert result.evaluations == 2

    def test_all_missed_stops_after_one_probe(self, cost_model, accs):
        """Edge: infeasible at the lower bracket — one probe, zero rates."""
        neta, _ = _mini_models()
        streaming = StreamingWorkload("hard2", streams=[
            StreamSpec("neta", fps=1e7, frames=3)], models={"neta": neta})
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        result = sustained_fps(simulator, streaming, accs, lo=1.0, hi=2.0,
                               iterations=8)
        assert result.factor == 0.0
        assert result.evaluations == 1
        assert "none" in result.describe()

    @pytest.mark.parametrize("kwargs", [
        dict(lo=0.0, hi=1.0),
        dict(lo=2.0, hi=1.0),
        dict(lo=-1.0, hi=1.0),
        dict(iterations=0),
        dict(tolerance=-0.1),
    ])
    def test_invalid_search_parameters_rejected(self, cost_model, accs,
                                                kwargs):
        streaming = _mini_streaming()
        simulator = ServingSimulator(HeraldScheduler(cost_model))
        with pytest.raises(ValueError):
            sustained_fps(simulator, streaming, accs, **kwargs)

    def test_zero_frame_report_meets_sla(self):
        """Edge: a report over zero frames (no streams simulated) misses
        nothing — the degenerate fixed point the searches bottom out on."""
        from repro.serve import ServingReport

        report = ServingReport(workload_name="empty", clock_hz=1e9)
        assert report.total_frames == 0
        assert report.deadline_miss_rate == 0.0
        assert report.meets_sla
        assert report.p99_latency_s == 0.0


# ---------------------------------------------------------------------------
# SLA objective in the search stack
# ---------------------------------------------------------------------------

class TestSlaObjective:
    def _point(self, missed: float, p99: float, edp: float):
        class _Result:
            def __init__(self):
                self.edp = edp

            def frame_summary(self):
                return {"missed_frames": missed, "p99_latency_s": p99,
                        "deadline_miss_rate": 1.0 if missed else 0.0}

        class _Point:
            def __init__(self):
                self.result = _Result()
                self.edp = edp

        return _Point()

    def test_partition_objective_prefers_zero_miss_over_lower_p99(self,
                                                                  cost_model):
        search = PartitionSearch(cost_model=cost_model, metric="sla")
        meets = search._objective(self._point(missed=0.0, p99=0.9, edp=5.0))
        misses = search._objective(self._point(missed=3.0, p99=0.1, edp=1.0))
        assert meets < misses

    def test_partition_objective_breaks_ties_on_p99_then_edp(self, cost_model):
        search = PartitionSearch(cost_model=cost_model, metric="sla")
        fast = search._objective(self._point(missed=0.0, p99=0.1, edp=9.0))
        slow = search._objective(self._point(missed=0.0, p99=0.2, edp=1.0))
        assert fast < slow
        cheap = search._objective(self._point(missed=0.0, p99=0.1, edp=1.0))
        assert cheap < fast

    def test_unknown_metric_still_rejected(self, cost_model):
        from repro.exceptions import SearchError
        with pytest.raises(SearchError):
            PartitionSearch(cost_model=cost_model, metric="bogus")

    def test_sla_search_on_streaming_workload(self, tiny_chip, cost_model):
        scheduler = HeraldScheduler(cost_model)
        search = PartitionSearch(cost_model=cost_model, scheduler=scheduler,
                                 pe_steps=4, bw_steps=1, metric="sla")
        best = search.search_best(tiny_chip, [NVDLA, SHIDIANNAO],
                                  _mini_streaming())
        frames = best.result.frame_summary()
        assert frames["frames"] == 7.0
        # The mini workload is easily served: the best point must meet SLA.
        assert frames["missed_frames"] == 0.0

    def test_evaluation_result_exposes_sla_properties(self, tiny_chip,
                                                      cost_model):
        scheduler = HeraldScheduler(cost_model)
        design = PartitionSearch(
            cost_model=cost_model, scheduler=scheduler, pe_steps=4,
            bw_steps=1).build_design(tiny_chip, [NVDLA, SHIDIANNAO],
                                     (128, 128), (4.0, 4.0))
        result = evaluate_design(design, _mini_streaming(),
                                 cost_model=cost_model, scheduler=scheduler)
        summary = result.frame_summary()
        assert result.p99_latency_s == summary["p99_latency_s"] > 0.0
        assert result.deadline_miss_rate == summary["deadline_miss_rate"]

    def test_dse_best_supports_sla(self, tiny_chip, cost_model):
        scheduler = HeraldScheduler(cost_model)
        streaming = _mini_streaming()
        design = PartitionSearch(
            cost_model=cost_model, scheduler=scheduler, pe_steps=4,
            bw_steps=1).build_design(tiny_chip, [NVDLA, SHIDIANNAO],
                                     (128, 128), (4.0, 4.0))
        meets = evaluate_design(design, streaming, cost_model=cost_model,
                                scheduler=scheduler)
        result = DSEResult(workload_name=streaming.name, chip_name="tiny")
        result.points.append(DesignSpacePoint(category="hda",
                                              design=meets.design,
                                              result=meets))
        best = result.best(metric="sla")
        assert best.result is meets


# ---------------------------------------------------------------------------
# Golden pinning
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def golden_streaming():
    return golden_scheduler.load_golden(golden_scheduler.STREAMING_FILE)


class TestStreamingGolden:
    def test_matrix_is_complete(self, golden_streaming):
        expected = golden_scheduler.streaming_scenario_keys()
        assert sorted(golden_streaming) == sorted(expected)
        assert len(expected) == 36

    def test_every_streaming_scenario_matches_bit_for_bit(self,
                                                          golden_streaming):
        current = golden_scheduler.generate_streaming_timelines()
        mismatched = [key for key in golden_streaming
                      if golden_streaming[key] != current[key]]
        assert mismatched == []

    def test_traces_actually_perturb_timelines(self, golden_streaming):
        """The jittered trace must not silently collapse onto the uniform one."""
        for key in golden_streaming:
            if "|uniform|" not in key:
                continue
            sibling = key.replace("|uniform|", "|jittered|")
            assert golden_streaming[key]["digest"] != \
                golden_streaming[sibling]["digest"]

    def test_deadline_misses_participate(self, golden_streaming):
        rates = {float(record["frame_summary"]["deadline_miss_rate"])
                 for record in golden_streaming.values()}
        assert any(rate > 0.0 for rate in rates)


class TestBatchCorpusEquivalence:
    def test_zero_release_pass_reproduces_the_batch_corpus(self):
        """The online path with an all-zero trace equals the 192-scenario
        batch golden corpus generated from the seed implementation."""
        golden = golden_scheduler.load_golden(golden_scheduler.TIMELINES_FILE)
        online = golden_scheduler.generate_timelines(zero_release=True)
        mismatched = [key for key in golden if golden[key] != online[key]]
        assert mismatched == []


class TestPoolParity:
    def test_jobs4_reproduces_serial_streaming_results(self, tiny_chip):
        streaming = _mini_streaming(jitter_s=0.0002)
        search = PartitionSearch(cost_model=CostModel(), pe_steps=4, bw_steps=1)
        candidates = search.candidate_partitions(tiny_chip, 2)
        designs = [search.build_design(tiny_chip, [NVDLA, SHIDIANNAO], pes, bws)
                   for pes, bws in candidates]
        tasks = [EvaluationTask(index, design, streaming, category="hda")
                 for index, design in enumerate(designs)]
        serial = SerialBackend().run(tasks)
        pooled = ProcessPoolBackend(jobs=4).run(tasks)
        for left, right in zip(serial, pooled):
            assert _timeline(left.schedule) == _timeline(right.schedule)
            assert left.frame_summary() == right.frame_summary()
