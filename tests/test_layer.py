"""Tests for the layer substrate (dimensions, derived geometry, validation)."""

import pytest

from repro.exceptions import LayerDefinitionError
from repro.models.layer import (
    Layer,
    LayerType,
    conv2d,
    dwconv,
    fc,
    gemm,
    layer_heterogeneity,
    pwconv,
    upconv,
)


class TestLayerConstruction:
    def test_conv2d_builder(self):
        layer = conv2d("c", k=64, c=3, y=224, x=224, r=7, s=7, stride=2)
        assert layer.layer_type is LayerType.CONV2D
        assert layer.k == 64 and layer.c == 3

    def test_pwconv_builder_is_1x1(self):
        layer = pwconv("p", k=128, c=64, y=28, x=28)
        assert layer.r == 1 and layer.s == 1

    def test_dwconv_builder_matches_channels(self):
        layer = dwconv("d", c=96, y=30, x=30, r=3, s=3)
        assert layer.k == layer.c == 96

    def test_fc_builder_has_unit_spatial_dims(self):
        layer = fc("f", k=1000, c=2048)
        assert layer.y == layer.x == layer.r == layer.s == 1

    def test_gemm_builder_folds_n_into_x(self):
        layer = gemm("g", k=1024, c=512, n=32)
        assert layer.x == 32

    def test_upconv_builder(self):
        layer = upconv("u", k=64, c=128, y=32, x=32, r=2, s=2, upscale=2)
        assert layer.layer_type is LayerType.UPCONV

    def test_layers_are_hashable(self):
        a = conv2d("a", k=8, c=8, y=8, x=8, r=3, s=3)
        b = conv2d("a", k=8, c=8, y=8, x=8, r=3, s=3)
        assert hash(a) == hash(b)
        assert a == b

    def test_renamed_preserves_dimensions(self):
        layer = conv2d("a", k=8, c=8, y=8, x=8, r=3, s=3)
        renamed = layer.renamed("b", model_name="m")
        assert renamed.name == "b"
        assert renamed.model_name == "m"
        assert renamed.k == layer.k


class TestLayerValidation:
    def test_rejects_zero_dimension(self):
        with pytest.raises(LayerDefinitionError):
            Layer("bad", LayerType.CONV2D, k=0, c=3, y=8, x=8, r=3, s=3)

    def test_rejects_negative_dimension(self):
        with pytest.raises(LayerDefinitionError):
            Layer("bad", LayerType.CONV2D, k=8, c=-1, y=8, x=8, r=3, s=3)

    def test_rejects_non_integer_dimension(self):
        with pytest.raises(LayerDefinitionError):
            Layer("bad", LayerType.CONV2D, k=8.5, c=3, y=8, x=8, r=3, s=3)

    def test_depthwise_requires_matching_channels(self):
        with pytest.raises(LayerDefinitionError):
            Layer("bad", LayerType.DWCONV, k=32, c=64, y=8, x=8, r=3, s=3)

    def test_pointwise_requires_1x1_filter(self):
        with pytest.raises(LayerDefinitionError):
            Layer("bad", LayerType.PWCONV, k=8, c=8, y=8, x=8, r=3, s=3)

    def test_filter_cannot_exceed_activation(self):
        with pytest.raises(LayerDefinitionError):
            conv2d("bad", k=8, c=8, y=2, x=2, r=3, s=3)

    def test_upscale_only_for_upconv(self):
        with pytest.raises(LayerDefinitionError):
            Layer("bad", LayerType.CONV2D, k=8, c=8, y=8, x=8, r=3, s=3, upscale=2)


class TestDerivedGeometry:
    def test_output_dims_stride_one(self):
        layer = conv2d("c", k=8, c=8, y=10, x=10, r=3, s=3)
        assert layer.out_y == 8 and layer.out_x == 8

    def test_output_dims_stride_two(self):
        layer = conv2d("c", k=8, c=8, y=11, x=11, r=3, s=3, stride=2)
        assert layer.out_y == 5 and layer.out_x == 5

    def test_upconv_output_scales_up(self):
        layer = upconv("u", k=8, c=8, y=16, x=16, r=2, s=2, upscale=2)
        assert layer.out_y == 32 and layer.out_x == 32

    def test_conv_macs(self):
        layer = conv2d("c", k=4, c=2, y=5, x=5, r=3, s=3)
        assert layer.macs == 4 * 2 * 3 * 3 * 3 * 3

    def test_depthwise_macs_skip_channel_product(self):
        layer = dwconv("d", c=8, y=6, x=6, r=3, s=3)
        assert layer.macs == 8 * 4 * 4 * 3 * 3

    def test_fc_macs(self):
        layer = fc("f", k=100, c=200)
        assert layer.macs == 100 * 200

    def test_tensor_element_counts(self):
        layer = conv2d("c", k=4, c=2, y=5, x=5, r=3, s=3)
        assert layer.input_elements == 2 * 5 * 5
        assert layer.output_elements == 4 * 3 * 3
        assert layer.filter_elements == 4 * 2 * 3 * 3

    def test_depthwise_filter_elements(self):
        layer = dwconv("d", c=8, y=6, x=6, r=3, s=3)
        assert layer.filter_elements == 8 * 3 * 3

    def test_total_elements_is_sum(self):
        layer = conv2d("c", k=4, c=2, y=5, x=5, r=3, s=3)
        assert layer.total_elements == (layer.input_elements + layer.output_elements
                                        + layer.filter_elements)

    def test_channel_activation_ratio(self):
        layer = fc("f", k=1024, c=1024)
        assert layer.channel_activation_ratio == pytest.approx(1024.0)

    def test_accumulates_across_channels(self):
        assert conv2d("c", k=4, c=2, y=5, x=5, r=3, s=3).accumulates_across_channels
        assert not dwconv("d", c=8, y=6, x=6, r=3, s=3).accumulates_across_channels

    def test_arithmetic_intensity_positive(self):
        layer = conv2d("c", k=64, c=64, y=16, x=16, r=3, s=3)
        assert layer.arithmetic_intensity() > 1.0

    def test_describe_mentions_name_and_type(self):
        layer = conv2d("stem", k=8, c=3, y=10, x=10, r=3, s=3)
        text = layer.describe()
        assert "stem" in text and "CONV2D" in text


class TestHeterogeneitySummary:
    def test_summary_keys(self):
        layers = [fc("a", k=10, c=10), fc("b", k=100, c=10)]
        stats = layer_heterogeneity(layers)
        assert set(stats) == {"min", "median", "max", "spread"}

    def test_median_of_odd_count(self):
        layers = [fc("a", k=1, c=1), fc("b", k=2, c=1), fc("c", k=8, c=1)]
        assert layer_heterogeneity(layers)["median"] == pytest.approx(2.0)

    def test_median_of_even_count(self):
        layers = [fc("a", k=2, c=1), fc("b", k=4, c=1)]
        assert layer_heterogeneity(layers)["median"] == pytest.approx(3.0)

    def test_empty_collection_raises(self):
        with pytest.raises(LayerDefinitionError):
            layer_heterogeneity([])
