"""Tests for loop nests, dataflow styles, and mapping construction."""

import pytest

from repro.dataflow.loopnest import DIMENSIONS, Loop, LoopNest, same_inner_loop_order
from repro.dataflow.mapping import build_mapping, clear_mapping_cache, mapping_cache_info
from repro.dataflow.styles import ALL_STYLES, EYERISS, NVDLA, SHIDIANNAO, style_by_name
from repro.exceptions import MappingError
from repro.models.layer import conv2d, dwconv, fc, pwconv


class TestLoopNest:
    def test_dimensions_constant(self):
        assert DIMENSIONS == ("K", "C", "Y", "X", "R", "S")

    def test_loop_rejects_unknown_dimension(self):
        with pytest.raises(ValueError):
            Loop("Z")

    def test_loop_rejects_negative_level(self):
        with pytest.raises(ValueError):
            Loop("K", level=-1)

    def test_loop_render(self):
        assert Loop("K", spatial=True, level=0).render() == "pfor(k0)"
        assert Loop("Y", spatial=False, level=1).render() == "for(y1)"

    def test_spatial_dimensions_extraction(self):
        nest = NVDLA.loop_nest
        assert set(nest.spatial_dimensions) == {"K", "C"}

    def test_temporal_dimensions_exclude_spatial(self):
        nest = NVDLA.loop_nest
        assert "K" not in nest.temporal_dimensions

    def test_innermost_temporal(self):
        nest = SHIDIANNAO.loop_nest
        assert nest.innermost_temporal() == "S"

    def test_interchange_swaps_loops(self):
        nest = NVDLA.loop_nest
        swapped = nest.interchange(0, 1)
        assert swapped.loops[0] == nest.loops[1]
        assert swapped.loops[1] == nest.loops[0]

    def test_parallelise_marks_loop_spatial(self):
        nest = LoopNest.from_spec("t", [("K", False, 0), ("C", False, 0)])
        parallel = nest.parallelise("K")
        assert parallel.spatial_dimensions == ["K"]

    def test_render_contains_mac_statement(self):
        assert "Output[k][y][x]" in NVDLA.loop_nest.render()

    def test_same_inner_loop_order(self):
        assert same_inner_loop_order(NVDLA.loop_nest, NVDLA.loop_nest)


class TestStyles:
    def test_three_styles_available(self):
        assert len(ALL_STYLES) == 3

    def test_style_lookup_by_name_and_alias(self):
        assert style_by_name("nvdla") is NVDLA
        assert style_by_name("shi-diannao") is SHIDIANNAO
        assert style_by_name("SHI") is SHIDIANNAO
        assert style_by_name("row-stationary") is EYERISS

    def test_unknown_style_raises(self):
        with pytest.raises(KeyError):
            style_by_name("tpu")

    def test_stationarity_assignments(self):
        assert NVDLA.stationary == "weight"
        assert SHIDIANNAO.stationary == "output"
        assert EYERISS.stationary == "row"

    def test_nvdla_channel_cap(self):
        assert NVDLA.unroll_cap("C") == 64
        assert NVDLA.unroll_cap("K") is None

    def test_styles_are_hashable(self):
        assert len({NVDLA, SHIDIANNAO, EYERISS}) == 3

    def test_depthwise_drops_k_dimension_for_channel_parallel_styles(self):
        layer = dwconv("d", c=128, y=16, x=16, r=3, s=3)
        dims = dict(NVDLA.spatial_dims_for_layer(layer))
        assert "K" not in dims and dims["C"] == 128

    def test_describe_mentions_stationarity(self):
        assert "weight" in NVDLA.describe()


class TestMapping:
    def test_invalid_pe_count_raises(self):
        layer = fc("f", k=64, c=64)
        with pytest.raises(MappingError):
            build_mapping(layer, NVDLA, 0)

    def test_active_pes_never_exceed_budget(self):
        layer = conv2d("c", k=96, c=48, y=30, x=30, r=3, s=3)
        for pes in (8, 64, 500, 4096):
            mapping = build_mapping(layer, NVDLA, pes)
            assert mapping.active_pes <= pes

    def test_compute_steps_cover_all_macs(self):
        layer = conv2d("c", k=96, c=48, y=30, x=30, r=3, s=3)
        for style in ALL_STYLES:
            mapping = build_mapping(layer, style, 256)
            assert mapping.compute_steps * mapping.active_pes >= layer.macs

    def test_utilisation_bounded_by_one(self):
        layer = conv2d("c", k=96, c=48, y=30, x=30, r=3, s=3)
        for style in ALL_STYLES:
            mapping = build_mapping(layer, style, 256)
            assert 0.0 < mapping.utilisation <= 1.0

    def test_single_pe_has_full_utilisation(self):
        layer = conv2d("c", k=8, c=8, y=10, x=10, r=3, s=3)
        mapping = build_mapping(layer, SHIDIANNAO, 1)
        assert mapping.utilisation == pytest.approx(1.0)
        assert mapping.compute_steps == layer.macs

    def test_nvdla_underutilises_on_depthwise(self):
        # Fig. 5 layer 3: channel-parallel dataflows cannot fill the array on
        # depth-wise convolutions, activation-parallel dataflows can.
        layer = dwconv("d", c=32, y=34, x=34, r=3, s=3)
        nvdla = build_mapping(layer, NVDLA, 1024)
        shi = build_mapping(layer, SHIDIANNAO, 1024)
        assert nvdla.utilisation < 0.1
        assert shi.utilisation > 0.5

    def test_shidiannao_underutilises_on_fc(self):
        layer = fc("f", k=2048, c=1024)
        nvdla = build_mapping(layer, NVDLA, 1024)
        shi = build_mapping(layer, SHIDIANNAO, 1024)
        assert shi.utilisation < 0.01
        assert nvdla.utilisation > 0.5

    def test_nvdla_prefers_channel_heavy_layer(self):
        layer = pwconv("p", k=1024, c=512, y=7, x=7)
        nvdla = build_mapping(layer, NVDLA, 4096)
        shi = build_mapping(layer, SHIDIANNAO, 4096)
        assert nvdla.compute_steps < shi.compute_steps

    def test_shidiannao_prefers_activation_heavy_layer(self):
        layer = conv2d("c", k=16, c=16, y=130, x=130, r=3, s=3)
        nvdla = build_mapping(layer, NVDLA, 4096)
        shi = build_mapping(layer, SHIDIANNAO, 4096)
        assert shi.compute_steps < nvdla.compute_steps

    def test_nvdla_channel_cap_limits_unrolling(self):
        layer = pwconv("p", k=64, c=512, y=14, x=14)
        mapping = build_mapping(layer, NVDLA, 16384)
        assert mapping.factor("C") <= 64

    def test_factor_defaults_to_one_for_unknown_dim(self):
        layer = fc("f", k=64, c=64)
        mapping = build_mapping(layer, NVDLA, 64)
        assert mapping.factor("R") == 1

    def test_mapping_describe(self):
        layer = fc("f", k=64, c=64)
        text = build_mapping(layer, NVDLA, 64).describe()
        assert "nvdla" in text

    def test_mapping_results_are_cached(self):
        clear_mapping_cache()
        layer = conv2d("c", k=32, c=32, y=18, x=18, r=3, s=3)
        build_mapping(layer, NVDLA, 128)
        build_mapping(layer, NVDLA, 128)
        info = mapping_cache_info()
        assert info.hits >= 1

    def test_more_pes_never_slower(self):
        layer = conv2d("c", k=128, c=64, y=30, x=30, r=3, s=3)
        for style in ALL_STYLES:
            small = build_mapping(layer, style, 128)
            large = build_mapping(layer, style, 2048)
            assert large.compute_steps <= small.compute_steps
