"""Property-based tests of the online (streaming) scheduling path.

For random DAG workloads crossed with random arrival traces, every schedule
the online scheduler produces must satisfy the serving invariants:

* **release respect** — no layer starts before its instance's frame arrives;
* **true producer edges** — a layer starts only after each of its actual
  producers finishes (independent branches may overlap);
* **per-sub-accelerator non-overlap** — one layer at a time per array;
* **memory-limit liveness** — with a global-buffer bound configured the
  scheduler still terminates, schedules every layer exactly once, and only
  reports violations through the counted DRAM-spill fallback;
* **degenerate equivalence** — an all-zero release trace is bit-for-bit the
  batch schedule, and the heap-based event-driven implementation matches the
  retained quadratic reference under arbitrary release traces.
"""

from __future__ import annotations

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.core.scheduler import HeraldScheduler
from repro.dataflow.styles import NVDLA, SHIDIANNAO
from repro.maestro.cost import CostModel
from repro.maestro.hardware import SubAcceleratorConfig
from repro.models.graph import ModelGraph
from repro.models.layer import fc
from repro.units import gbps, mib
from repro.workloads.spec import WorkloadSpec

#: One shared cost model: layer shapes repeat across examples, so the memo
#: keeps the sweep fast without affecting decisions (costs are pure).
_COST_MODEL = CostModel()


def _subs():
    return (
        SubAcceleratorConfig(name="a0", dataflow=NVDLA, num_pes=128,
                             bandwidth_bytes_per_s=gbps(4), buffer_bytes=mib(1)),
        SubAcceleratorConfig(name="a1", dataflow=SHIDIANNAO, num_pes=64,
                             bandwidth_bytes_per_s=gbps(4), buffer_bytes=mib(1)),
    )


def _random_workload(n: int, edge_seed: int, dims, batches: int) -> WorkloadSpec:
    rng = random_module.Random(edge_seed)
    layers = [fc(f"l{i}", k=dims[i], c=dims[(i * 7 + 3) % len(dims)])
              for i in range(n)]
    graph = ModelGraph.from_layers("dag", layers)
    for i in range(n):
        for j in range(i + 2, n):
            if rng.random() < 0.3:
                graph.add_edge(f"l{i}", f"l{j}")
    return WorkloadSpec.from_models("dag-wl", [graph], batches=batches)


def _random_releases(workload: WorkloadSpec, release_seed: int,
                     horizon: float) -> dict:
    rng = random_module.Random(release_seed)
    return {instance.instance_id: rng.uniform(0.0, horizon)
            for instance in workload.instances()}


def _timeline(schedule):
    return [(e.instance_id, e.layer_index, e.sub_accelerator, e.start_cycle,
             e.finish_cycle) for e in schedule.entries]


_scheduler_configs = st.tuples(
    st.sampled_from(["edp", "latency", "energy"]),
    st.sampled_from(["breadth", "depth"]),
    st.sampled_from([None, 1.25, 2.0]),
)

_workload_params = dict(
    n=st.integers(min_value=3, max_value=10),
    edge_seed=st.integers(min_value=0, max_value=2**31),
    dims=st.lists(st.sampled_from([4, 8, 16, 64, 256]),
                  min_size=12, max_size=12),
    batches=st.integers(min_value=1, max_value=3),
    release_seed=st.integers(min_value=0, max_value=2**31),
    horizon=st.sampled_from([0.0, 1e3, 1e5, 1e7]),
    config=_scheduler_configs,
)


class TestOnlineInvariants:
    @given(**_workload_params)
    @settings(max_examples=50, deadline=None)
    def test_schedule_respects_releases_edges_and_non_overlap(
            self, n, edge_seed, dims, batches, release_seed, horizon, config):
        workload = _random_workload(n, edge_seed, dims, batches)
        releases = _random_releases(workload, release_seed, horizon)
        metric, ordering, lb = config
        scheduler = HeraldScheduler(_COST_MODEL, metric=metric,
                                    ordering=ordering, load_balance_factor=lb)
        accs = _subs()
        # scheduler.schedule() runs Schedule.validate() internally (producer
        # edges, non-overlap, completeness, release respect); the explicit
        # checks below re-verify the serving invariants independently of the
        # validator's implementation.
        schedule = scheduler.schedule(workload, accs, release_cycles=releases)

        for entry in schedule.entries:
            assert entry.start_cycle >= releases[entry.instance_id] - 1e-6

        dependences = workload.instance_dependences()
        finish = {(e.instance_id, e.layer_index): e.finish_cycle
                  for e in schedule.entries}
        assert len(finish) == len(schedule.entries)
        for entry in schedule.entries:
            for producer in dependences[entry.instance_id][entry.layer_index]:
                assert entry.start_cycle >= \
                    finish[(entry.instance_id, producer)] - 1e-6

        for acc in accs:
            timeline = schedule.entries_for(acc.name)
            for previous, current in zip(timeline, timeline[1:]):
                assert current.start_cycle >= previous.finish_cycle - 1e-6

    @given(**_workload_params)
    @settings(max_examples=30, deadline=None)
    def test_heap_matches_reference_under_releases(
            self, n, edge_seed, dims, batches, release_seed, horizon, config):
        workload = _random_workload(n, edge_seed, dims, batches)
        releases = _random_releases(workload, release_seed, horizon)
        metric, ordering, lb = config
        scheduler = HeraldScheduler(_COST_MODEL, metric=metric,
                                    ordering=ordering, load_balance_factor=lb)
        accs = _subs()
        assignments = scheduler._initial_assignment(workload, accs)
        heap = scheduler._list_schedule(assignments, accs,
                                        release_cycles=releases)
        reference = scheduler._list_schedule_reference(assignments, accs,
                                                       release_cycles=releases)
        assert _timeline(heap) == _timeline(reference)

    @given(**_workload_params)
    @settings(max_examples=25, deadline=None)
    def test_zero_release_trace_is_the_batch_schedule(
            self, n, edge_seed, dims, batches, release_seed, horizon, config):
        workload = _random_workload(n, edge_seed, dims, batches)
        metric, ordering, lb = config
        scheduler = HeraldScheduler(_COST_MODEL, metric=metric,
                                    ordering=ordering, load_balance_factor=lb)
        accs = _subs()
        zero = {instance.instance_id: 0.0 for instance in workload.instances()}
        online = scheduler.schedule(workload, accs, release_cycles=zero)
        batch = scheduler.schedule(workload, accs)
        assert _timeline(online) == _timeline(batch)

    @given(
        n=st.integers(min_value=3, max_value=8),
        edge_seed=st.integers(min_value=0, max_value=2**31),
        dims=st.lists(st.sampled_from([16, 64, 256]), min_size=12, max_size=12),
        release_seed=st.integers(min_value=0, max_value=2**31),
        memory_kib=st.sampled_from([2, 8, 64]),
    )
    @settings(max_examples=25, deadline=None)
    def test_memory_limited_online_scheduling_stays_live(
            self, n, edge_seed, dims, release_seed, memory_kib):
        """A binding global-buffer bound must never deadlock the online path:
        every layer is scheduled exactly once, the schedule validates, and
        overflow appears only as counted DRAM-spill violations."""
        workload = _random_workload(n, edge_seed, dims, batches=2)
        releases = _random_releases(workload, release_seed, 1e5)
        scheduler = HeraldScheduler(_COST_MODEL,
                                    memory_limit_bytes=memory_kib * 1024)
        schedule = scheduler.schedule(workload, _subs(),
                                      release_cycles=releases)
        assert len(schedule.entries) == workload.total_layers
        assert scheduler.last_memory_violations >= 0
