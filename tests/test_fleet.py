"""Tests for the fleet serving layer (router, fleet simulator, golden gate).

Four contracts are pinned here:

1. **Single-chip identity.**  A one-chip fleet under the passthrough policy
   is bit-for-bit the bare :class:`ServingSimulator` — checked structurally
   on every scenario of the 36-scenario *streaming* golden corpus (the
   fleet's per-chip schedule digest must equal the corpus record written for
   the single-chip path).

2. **Fleet goldens.**  The chain/diamond/unet/duo x fleet-composition x
   policy matrix (``tests/golden/fleet_timelines.json``, 40 scenarios) pins
   dispatch assignments, per-chip timelines, and the aggregated report
   exactly.

3. **Backend parity.**  Chips simulated through a 4-worker process pool
   reproduce the serial fleet results bit-for-bit.

4. **Routing semantics.**  Policy-specific unit behaviour: round-robin
   cycling, sticky per-stream affinity, earliest-completion preferring a
   faster chip on heterogeneous fleets, passthrough pinning chip 0, and the
   dispatch-plan partition invariant.
"""

from __future__ import annotations

import json

import pytest

import golden_scheduler
from repro.core.scheduler import HeraldScheduler
from repro.exceptions import SearchError, WorkloadError
from repro.exec import ProcessPoolBackend, SerialBackend
from repro.maestro.cost import CostModel
from repro.serve import (
    DISPATCH_POLICY_NAMES,
    AutoscalePolicy,
    ChipFailure,
    FaultSpec,
    Fleet,
    FleetSimulator,
    FrameCostEstimator,
    FrameTrace,
    Router,
    ServingSimulator,
    StreamSpec,
    StreamingWorkload,
    min_chips_for_sla,
    policy_by_name,
)
from repro.serve.router import arrival_order


def _timeline(schedule):
    return [(e.instance_id, e.layer_index, e.sub_accelerator, e.start_cycle,
             e.finish_cycle) for e in schedule.entries]


@pytest.fixture(scope="module")
def golden_fleet():
    return golden_scheduler.load_golden(golden_scheduler.FLEET_FILE)


@pytest.fixture(scope="module")
def fleet_cost_model():
    """Module-scoped model so the golden sweep and unit tests stay warm."""
    return CostModel()


def _simulator(cost_model):
    return FleetSimulator(cost_model=cost_model,
                          scheduler=HeraldScheduler(cost_model))


# ---------------------------------------------------------------------------
# Golden gate
# ---------------------------------------------------------------------------
class TestFleetGolden:
    def test_matrix_is_complete(self, golden_fleet):
        keys = golden_scheduler.fleet_scenario_keys()
        assert len(keys) == 40
        assert sorted(golden_fleet) == sorted(keys)

    def test_every_fleet_scenario_matches_bit_for_bit(self, golden_fleet,
                                                      fleet_cost_model):
        for key in golden_scheduler.fleet_scenario_keys():
            fresh = golden_scheduler.run_fleet_scenario(key, fleet_cost_model)
            assert fresh == golden_fleet[key], f"fleet golden mismatch: {key}"

    def test_policies_actually_diverge(self, golden_fleet):
        """The matrix must exercise genuinely different dispatch decisions:
        on every multi-chip fleet at least two policies disagree."""
        for workload in golden_scheduler.FLEET_WORKLOADS:
            assignments = {
                policy: json.dumps(
                    golden_fleet[f"fleet|{workload}|2homo|{policy}"]
                    ["assignments"], sort_keys=True)
                for policy in ("round-robin", "least-outstanding",
                               "earliest-completion", "sticky")
            }
            assert len(set(assignments.values())) >= 2, (
                f"all policies produced one dispatch plan for {workload}")

    def test_heterogeneous_routing_prefers_the_faster_chip(self, golden_fleet):
        """On the 2-chip heterogeneous fleet the completion-aware policy must
        send a strict majority of frames to the full-resource chip."""
        for workload in golden_scheduler.FLEET_WORKLOADS:
            record = golden_fleet[
                f"fleet|{workload}|2hetero|earliest-completion"]
            full, quarter = record["frames_per_chip"]
            assert full > quarter


# ---------------------------------------------------------------------------
# Single-chip identity against the streaming corpus
# ---------------------------------------------------------------------------
class TestSingleChipIdentity:
    def test_passthrough_fleet_reproduces_streaming_corpus(self,
                                                           fleet_cost_model):
        """For all 36 streaming golden scenarios, the single-chip passthrough
        fleet's chip schedule must digest-match the corpus record (which pins
        the bare single-chip ``ServingSimulator`` path)."""
        golden = golden_scheduler.load_golden(golden_scheduler.STREAMING_FILE)
        chip = golden_scheduler.build_fleet_chip()
        for key in golden_scheduler.streaming_scenario_keys():
            config = golden_scheduler.parse_streaming_key(key)
            streaming = golden_scheduler.build_streaming_workload(
                config["workload"], config["trace"])
            scheduler = HeraldScheduler(
                fleet_cost_model, metric=config["metric"],
                load_balance_factor=config["load_balance_factor"])
            simulator = FleetSimulator(cost_model=fleet_cost_model,
                                       scheduler=scheduler)
            result = simulator.simulate(streaming, Fleet.homogeneous(chip, 1),
                                        policy="passthrough")
            schedule = result.chip_results[0].schedule
            entries = [
                [entry.instance_id, entry.layer_index, entry.layer.name,
                 entry.sub_accelerator, repr(entry.start_cycle),
                 repr(entry.finish_cycle), repr(entry.cost.latency_cycles),
                 repr(entry.cost.energy_pj)]
                for entry in schedule.entries
            ]
            digest = golden_scheduler.timeline_digest(entries)
            assert digest == golden[key]["digest"], (
                f"single-chip fleet diverged from the streaming corpus: {key}")

    def test_single_chip_fleet_report_equals_bare_simulator(self,
                                                            fleet_cost_model):
        streaming = golden_scheduler.build_fleet_streaming_workload("duo")
        chip = golden_scheduler.build_fleet_chip()
        for policy in ("passthrough",) + DISPATCH_POLICY_NAMES:
            scheduler = HeraldScheduler(fleet_cost_model)
            bare = ServingSimulator(scheduler).simulate(
                streaming, chip.sub_accelerators)
            fleet_result = _simulator(fleet_cost_model).simulate(
                streaming, Fleet.homogeneous(chip, 1), policy=policy)
            chip_result = fleet_result.chip_results[0]
            assert _timeline(chip_result.schedule) == _timeline(bare.schedule)
            assert ([stats.summary() for stats in chip_result.report.streams]
                    == [stats.summary() for stats in bare.report.streams])
            # Pooled fleet percentiles equal the bare schedule's pooled
            # frame statistics (one chip => pooling is the identity).
            frames = bare.schedule.frame_summary()
            report = fleet_result.report
            assert report.p99_latency_s == frames["p99_latency_s"]
            assert report.missed_frames == frames["missed_frames"]


# ---------------------------------------------------------------------------
# Backend parity
# ---------------------------------------------------------------------------
class TestBackendParity:
    @pytest.mark.parametrize("key", [
        "fleet|duo|2homo|earliest-completion",
        "fleet|chain|4homo|round-robin",
    ])
    def test_jobs4_reproduces_serial_fleet_results(self, key):
        config = golden_scheduler.parse_fleet_key(key)
        streaming = golden_scheduler.build_fleet_streaming_workload(
            config["workload"])
        fleet = golden_scheduler.build_fleet(config["fleet"])

        def run(backend_cls, **kwargs):
            model = CostModel()
            backend = backend_cls(cost_model=model,
                                  scheduler=HeraldScheduler(model), **kwargs)
            simulator = FleetSimulator(backend=backend)
            return simulator.simulate(streaming, fleet,
                                      policy=config["policy"])

        serial = run(SerialBackend)
        pooled = run(ProcessPoolBackend, jobs=4)
        assert serial.plan.assignments == pooled.plan.assignments
        for left, right in zip(serial.chip_results, pooled.chip_results):
            if left.schedule is None:
                assert right.schedule is None
                continue
            assert _timeline(left.schedule) == _timeline(right.schedule)
        assert serial.report.summary() == pooled.report.summary()


# ---------------------------------------------------------------------------
# Fleet / router construction and semantics
# ---------------------------------------------------------------------------
def _mini_streaming():
    workloads = golden_scheduler.build_workloads()
    models = {"chainnet": workloads["chain"].model_graph("chainnet"),
              "diamond": workloads["diamond"].model_graph("diamond")}
    return StreamingWorkload("mini-fleet", streams=[
        StreamSpec("chainnet", fps=5000.0, frames=4),
        StreamSpec("diamond", fps=8000.0, frames=5, phase_s=2e-5),
    ], models=models)


class TestFleetConstruction:
    def test_empty_fleet_rejected(self):
        with pytest.raises(WorkloadError, match="no chips"):
            Fleet(name="empty", chips=())

    def test_duplicate_chip_names_rejected(self):
        chip = golden_scheduler.build_fleet_chip()
        with pytest.raises(WorkloadError, match="duplicate chip names"):
            Fleet(name="dup", chips=(chip, chip))

    def test_homogeneous_builder_renames_replicas(self):
        chip = golden_scheduler.build_fleet_chip()
        fleet = Fleet.homogeneous(chip, 3)
        assert fleet.num_chips == 3
        assert [c.name for c in fleet.chips] == [
            "golden-duo[0]", "golden-duo[1]", "golden-duo[2]"]
        with pytest.raises(WorkloadError, match=">= 1"):
            Fleet.homogeneous(chip, 0)

    def test_describe_lists_every_chip(self):
        fleet = Fleet.homogeneous(golden_scheduler.build_fleet_chip(), 2)
        text = fleet.describe()
        assert "2 chip(s)" in text
        assert "golden-duo[0]" in text and "golden-duo[1]" in text


class TestFrameTrace:
    def test_duck_types_the_stream_surface(self):
        trace = FrameTrace(model_name="m", releases_s=(0.0, 3e-4, 1e-4),
                           deadline_s=2e-4, fps=5000.0)
        assert trace.frames == 3
        assert trace.release_times_s() == (0.0, 3e-4, 1e-4)
        assert trace.effective_deadline_s == 2e-4
        scaled = trace.scaled(2.0)
        assert scaled.release_times_s() == (0.0, 1.5e-4, 5e-5)
        assert scaled.deadline_s == 1e-4 and scaled.fps == 10000.0
        assert "traced frames" in trace.describe()

    @pytest.mark.parametrize("kwargs", [
        dict(releases_s=(), deadline_s=1e-3, fps=1.0),
        dict(releases_s=(0.0, -1e-6), deadline_s=1e-3, fps=1.0),
        dict(releases_s=(0.0,), deadline_s=0.0, fps=1.0),
        dict(releases_s=(0.0,), deadline_s=1e-3, fps=0.0),
    ])
    def test_invalid_traces_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            FrameTrace(model_name="m", **kwargs)

    def test_scaled_rejects_non_positive_factor(self):
        trace = FrameTrace(model_name="m", releases_s=(0.0,), deadline_s=1e-3,
                           fps=1.0)
        with pytest.raises(WorkloadError):
            trace.scaled(0.0)


class TestRouter:
    def test_unknown_policy_rejected(self):
        with pytest.raises(WorkloadError, match="unknown dispatch policy"):
            policy_by_name("random")

    def test_arrival_order_is_by_release_then_stream(self):
        streaming = _mini_streaming()
        frames = arrival_order(streaming)
        releases = [frame.release_s for frame in frames]
        assert releases == sorted(releases)
        assert len(frames) == streaming.total_frames

    def test_round_robin_cycles_in_arrival_order(self, fleet_cost_model):
        streaming = _mini_streaming()
        chips = Fleet.homogeneous(golden_scheduler.build_fleet_chip(), 3).chips
        router = Router("round-robin",
                        estimator=FrameCostEstimator(fleet_cost_model))
        plan = router.dispatch(streaming, chips)
        frames = arrival_order(streaming)
        for position, frame in enumerate(frames):
            assert plan.assignments[(frame.model_name, frame.frame_index)] \
                == position % 3

    def test_passthrough_routes_everything_to_chip_zero(self, fleet_cost_model):
        streaming = _mini_streaming()
        chips = Fleet.homogeneous(golden_scheduler.build_fleet_chip(), 3).chips
        router = Router("passthrough",
                        estimator=FrameCostEstimator(fleet_cost_model))
        plan = router.dispatch(streaming, chips)
        assert set(plan.assignments.values()) == {0}
        assert plan.chip_workloads[1] is None
        assert plan.chip_workloads[2] is None
        # Complete subsets keep the original stream specs.
        assert plan.chip_workloads[0].streams == streaming.streams

    def test_sticky_keeps_streams_whole(self, fleet_cost_model):
        streaming = _mini_streaming()
        chips = Fleet.homogeneous(golden_scheduler.build_fleet_chip(), 2).chips
        router = Router("sticky",
                        estimator=FrameCostEstimator(fleet_cost_model))
        plan = router.dispatch(streaming, chips)
        for stream in streaming.streams:
            destinations = {
                plan.assignments[(stream.model_name, frame_index)]
                for frame_index in range(stream.frames)}
            assert len(destinations) == 1

    def test_partition_invariant_and_local_renumbering(self, fleet_cost_model):
        streaming = _mini_streaming()
        chips = Fleet.homogeneous(golden_scheduler.build_fleet_chip(), 2).chips
        router = Router("round-robin",
                        estimator=FrameCostEstimator(fleet_cost_model))
        plan = router.dispatch(streaming, chips)
        # Every global frame appears exactly once across the chip maps ...
        seen = [global_frame for frame_map in plan.frame_maps
                for global_frame in frame_map.values()]
        expected = [(stream.model_name, frame_index)
                    for stream in streaming.streams
                    for frame_index in range(stream.frames)]
        assert sorted(seen) == sorted(expected)
        # ... and local ids are contiguous model#0..k-1 per chip, in global
        # frame order.
        for chip_index, workload in enumerate(plan.chip_workloads):
            if workload is None:
                continue
            frame_map = plan.frame_maps[chip_index]
            for stream in workload.streams:
                globals_in_local_order = [
                    frame_map[f"{stream.model_name}#{local}"][1]
                    for local in range(stream.frames)]
                assert globals_in_local_order == sorted(globals_in_local_order)

    def test_estimator_ranks_the_faster_chip_cheaper(self, fleet_cost_model):
        streaming = _mini_streaming()
        estimator = FrameCostEstimator(fleet_cost_model)
        full = golden_scheduler.build_fleet_chip()
        quarter = golden_scheduler.build_fleet_chip(scale=4, label="quarter")
        assert estimator.frame_service_s(streaming, "chainnet", full) < \
            estimator.frame_service_s(streaming, "chainnet", quarter)

    def test_service_table_shares_entries_between_clones(self, fleet_cost_model):
        streaming = _mini_streaming()
        estimator = FrameCostEstimator(fleet_cost_model)
        fleet = Fleet.homogeneous(golden_scheduler.build_fleet_chip(), 3)
        tables = estimator.service_table(streaming, fleet.chips)
        assert tables[0] is tables[1] is tables[2]


class TestFleetSimulator:
    def test_backend_and_explicit_model_are_mutually_exclusive(self):
        model = CostModel()
        backend = SerialBackend(cost_model=model)
        with pytest.raises(ValueError, match="backend"):
            FleetSimulator(cost_model=model, backend=backend)

    def test_drop_deadline_factor_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            FleetSimulator(drop_deadline_factor=0.5)

    def test_empty_chips_get_empty_reports(self, fleet_cost_model):
        streaming = _mini_streaming()
        fleet = Fleet.homogeneous(golden_scheduler.build_fleet_chip(), 4)
        result = _simulator(fleet_cost_model).simulate(streaming, fleet,
                                                       policy="sticky")
        used = [index for index, workload
                in enumerate(result.plan.chip_workloads)
                if workload is not None]
        assert len(used) <= 2  # two streams -> at most two sticky chips
        for index, chip_result in enumerate(result.chip_results):
            if index not in used:
                assert chip_result.schedule is None
                assert chip_result.report.total_frames == 0
                assert result.report.chips[index].frames == 0
                assert result.report.chips[index].utilisation == 0.0

    def test_report_summary_is_strict_json(self, fleet_cost_model):
        streaming = _mini_streaming()
        fleet = Fleet.homogeneous(golden_scheduler.build_fleet_chip(), 3)
        result = _simulator(fleet_cost_model).simulate(streaming, fleet,
                                                       policy="sticky")
        text = json.dumps(result.report.summary(), allow_nan=False)
        assert "mini-fleet" in text

    def test_pooled_latency_keys_cover_every_frame(self, fleet_cost_model):
        streaming = _mini_streaming()
        fleet = Fleet.homogeneous(golden_scheduler.build_fleet_chip(), 2)
        result = _simulator(fleet_cost_model).simulate(streaming, fleet,
                                                       policy="round-robin")
        expected = {f"{stream.model_name}#{index}"
                    for stream in streaming.streams
                    for index in range(stream.frames)}
        assert set(result.report.frame_latencies_s) == expected


class TestMinChipsForSla:
    def test_already_sustained_returns_one(self, fleet_cost_model):
        # Generous deadline: one chip suffices.
        workloads = golden_scheduler.build_workloads()
        streaming = StreamingWorkload("easy", streams=[
            StreamSpec("chainnet", fps=100.0, frames=3, deadline_s=0.5)],
            models={"chainnet": workloads["chain"].model_graph("chainnet")})
        result = min_chips_for_sla(_simulator(fleet_cost_model), streaming,
                                   golden_scheduler.build_fleet_chip(),
                                   max_chips=4)
        assert result.chips == 1
        assert result.evaluations == 1
        assert result.report.meets_sla

    def test_infeasible_returns_zero(self, fleet_cost_model):
        # A deadline below the service time misses on any fleet size.
        workloads = golden_scheduler.build_workloads()
        streaming = StreamingWorkload("hopeless", streams=[
            StreamSpec("chainnet", fps=100.0, frames=3, deadline_s=1e-6)],
            models={"chainnet": workloads["chain"].model_graph("chainnet")})
        result = min_chips_for_sla(_simulator(fleet_cost_model), streaming,
                                   golden_scheduler.build_fleet_chip(),
                                   max_chips=2)
        assert result.chips == 0
        assert result.report is None
        assert "none" in result.describe()

    def test_bisection_result_is_minimal(self, fleet_cost_model):
        streaming = golden_scheduler.build_fleet_streaming_workload("duo")
        simulator = _simulator(fleet_cost_model)
        chip = golden_scheduler.build_fleet_chip()
        result = min_chips_for_sla(simulator, streaming, chip,
                                   policy="earliest-completion", max_chips=8)
        assert result.chips >= 1, "duo should be servable within 8 chips"
        meets_at = simulator.simulate(
            streaming, Fleet.homogeneous(chip, result.chips),
            policy="earliest-completion").report.meets_sla
        assert meets_at
        if result.chips > 1:
            below = simulator.simulate(
                streaming, Fleet.homogeneous(chip, result.chips - 1),
                policy="earliest-completion").report.meets_sla
            assert not below

    def test_max_chips_validated(self, fleet_cost_model):
        streaming = _mini_streaming()
        with pytest.raises(ValueError, match="max_chips"):
            min_chips_for_sla(_simulator(fleet_cost_model), streaming,
                              golden_scheduler.build_fleet_chip(),
                              max_chips=0)


# ---------------------------------------------------------------------------
# Closed loop: online ↔ a-priori equivalence, online goldens, fault semantics
# ---------------------------------------------------------------------------
class TestOnlineEquivalence:
    """The reduced regime (feedback off) must BE the a-priori dispatcher.

    ``simulate_online(feedback=False)`` routes every frame through the event
    loop against the estimate ledger, then simulates the compiled plan
    layer-accurately.  Serializing that result with the golden serializer
    must reproduce every record of the checked-in 40-scenario a-priori
    corpus byte for byte — same assignments, same per-chip timeline digests,
    same aggregated report.
    """

    def test_reduced_regime_matches_every_fleet_golden(self, golden_fleet,
                                                       fleet_cost_model):
        simulator = _simulator(fleet_cost_model)
        for key in golden_scheduler.fleet_scenario_keys():
            config = golden_scheduler.parse_fleet_key(key)
            streaming = golden_scheduler.build_fleet_streaming_workload(
                config["workload"])
            fleet = golden_scheduler.build_fleet(config["fleet"])
            online = simulator.simulate_online(
                streaming, fleet, policy=config["policy"], feedback=False)
            assert online.plan_result is not None, key
            assert not online.stats.feedback
            record = golden_scheduler.serialize_fleet_result(
                config["workload"], online.plan_result)
            assert record == golden_fleet[key], key

    def test_reduced_regime_report_has_no_online_section(self,
                                                         fleet_cost_model):
        streaming = golden_scheduler.build_fleet_streaming_workload("duo")
        fleet = golden_scheduler.build_fleet("2homo")
        online = _simulator(fleet_cost_model).simulate_online(
            streaming, fleet, policy="least-outstanding", feedback=False)
        assert "online" not in online.report.summary()

    def test_feedback_disabled_rejects_faults(self, fleet_cost_model):
        streaming = golden_scheduler.build_fleet_streaming_workload("duo")
        fleet = golden_scheduler.build_fleet("2homo")
        with pytest.raises(WorkloadError, match="feedback=True"):
            _simulator(fleet_cost_model).simulate_online(
                streaming, fleet, feedback=False,
                faults=FaultSpec(failures=(ChipFailure(0, 1e-3),)))

    def test_feedback_disabled_rejects_autoscale(self, fleet_cost_model):
        streaming = golden_scheduler.build_fleet_streaming_workload("duo")
        fleet = golden_scheduler.build_fleet("2homo")
        with pytest.raises(WorkloadError, match="feedback=True"):
            _simulator(fleet_cost_model).simulate_online(
                streaming, fleet, feedback=False,
                autoscale=AutoscalePolicy(interval_s=1e-3))


class TestOnlineGolden:
    """The 10-scenario closed-loop corpus is pinned bit for bit."""

    def test_matrix_is_complete(self):
        keys = golden_scheduler.online_scenario_keys()
        assert len(keys) == 10
        golden = golden_scheduler.load_golden(golden_scheduler.ONLINE_FILE)
        assert sorted(golden) == sorted(keys)

    def test_scenarios_match_golden(self, fleet_cost_model):
        golden = golden_scheduler.load_golden(golden_scheduler.ONLINE_FILE)
        for key in golden_scheduler.online_scenario_keys():
            record = golden_scheduler.run_online_scenario(key,
                                                          fleet_cost_model)
            assert record == golden[key], key


class TestOnlineSemantics:
    """Closed-loop behaviour that goldens alone cannot explain."""

    def _online(self, cost_model, **kwargs):
        streaming = golden_scheduler.build_fleet_streaming_workload("duo")
        fleet = golden_scheduler.build_fleet("2homo")
        return _simulator(cost_model).simulate_online(
            streaming, fleet, policy="least-outstanding", **kwargs)

    def test_death_redispatches_without_loss(self, fleet_cost_model):
        result = self._online(
            fleet_cost_model,
            faults=FaultSpec(failures=(ChipFailure(0, 0.0008),)))
        assert result.stats.redispatched_frames >= 1
        assert result.stats.lost_frame_ids == ()
        # Every frame that ever visited chip 0 after its death must have
        # been re-homed: nothing completes on a dead chip.
        for record in result.frames:
            assert record.finish_s is not None
            assert record.chip_history[-1] == 1 or record.finish_s <= 0.0008

    def test_conservation_when_every_chip_dies(self, fleet_cost_model):
        result = self._online(
            fleet_cost_model,
            faults=FaultSpec(failures=(ChipFailure(0, 0.0005),
                                       ChipFailure(1, 0.0005))))
        completed = {r.frame_id for r in result.frames if not r.lost}
        lost = set(result.stats.lost_frame_ids)
        everything = {r.frame_id for r in result.frames}
        assert completed | lost == everything
        assert completed & lost == set()
        assert lost, "frames arriving after the last death must be lost"

    def test_all_chips_dead_at_start_raises(self, fleet_cost_model):
        with pytest.raises(SearchError, match="dead"):
            self._online(
                fleet_cost_model,
                faults=FaultSpec(failures=(ChipFailure(0, 0.0),
                                           ChipFailure(1, 0.0))))

    def test_liveness_with_a_surviving_chip(self, fleet_cost_model):
        # One chip never dies => every frame completes, none are lost.
        result = self._online(
            fleet_cost_model,
            faults=FaultSpec(failures=(ChipFailure(1, 0.0002),)))
        assert result.stats.lost_frame_ids == ()
        assert all(r.finish_s is not None for r in result.frames)

    def test_autoscale_intervals_partition_the_run(self, fleet_cost_model):
        streaming = golden_scheduler.build_fleet_streaming_workload("chain")
        fleet = golden_scheduler.build_fleet("4homo")
        result = _simulator(fleet_cost_model).simulate_online(
            streaming, fleet, policy="least-outstanding",
            autoscale=AutoscalePolicy(interval_s=0.0004, min_chips=1,
                                      max_chips=4))
        intervals = result.stats.intervals
        assert intervals, "a run longer than one interval must record some"
        for earlier, later in zip(intervals, intervals[1:]):
            # Boundaries are accumulated event times, so adjacency is exact
            # only up to float addition order.
            assert later.start_s == pytest.approx(earlier.end_s, rel=1e-9)
            assert later.index == earlier.index + 1
        for interval in intervals:
            assert 1 <= interval.active_after <= 4

    def test_router_dispatch_on_empty_fleet_raises(self, fleet_cost_model):
        streaming = _mini_streaming()
        router = Router("round-robin",
                        estimator=FrameCostEstimator(fleet_cost_model))
        with pytest.raises(SearchError, match="empty fleet"):
            router.dispatch(streaming, ())
