"""Tests for the public package surface and the exception hierarchy."""

import pytest

import repro
from repro import exceptions


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__ == "1.8.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"missing export {name}"

    def test_headline_entry_points_importable(self):
        assert callable(repro.evaluate_design)
        assert callable(repro.workload_by_name)
        assert callable(repro.accelerator_class)
        assert repro.HeraldDSE is not None


class TestExceptions:
    ALL = [
        exceptions.LayerDefinitionError,
        exceptions.GraphError,
        exceptions.MappingError,
        exceptions.HardwareConfigError,
        exceptions.PartitionError,
        exceptions.SchedulingError,
        exceptions.WorkloadError,
        exceptions.SearchError,
    ]

    @pytest.mark.parametrize("exc", ALL)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, exceptions.ReproError)

    def test_repro_error_is_an_exception(self):
        assert issubclass(exceptions.ReproError, Exception)

    def test_catching_base_catches_derived(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.SchedulingError("boom")
