"""Tests for the MAESTRO-style cost model: energy table, hardware, reuse, cost."""

import pytest

from repro.dataflow.mapping import build_mapping
from repro.dataflow.styles import ALL_STYLES, EYERISS, NVDLA, SHIDIANNAO
from repro.exceptions import HardwareConfigError
from repro.maestro.cost import CostModel, LayerCost, metric_value
from repro.maestro.energy import DEFAULT_ENERGY_TABLE, EnergyTable
from repro.maestro.hardware import ChipConfig, SubAcceleratorConfig
from repro.maestro.reuse import analyse_reuse
from repro.models.layer import conv2d, dwconv, fc, pwconv
from repro.units import gbps, mib


def _sub(style=NVDLA, pes=256, bw_gbps=8.0, buffer_mib=2.0):
    return SubAcceleratorConfig(
        name=f"test-{style.name if style else 'rda'}",
        dataflow=style,
        num_pes=pes,
        bandwidth_bytes_per_s=gbps(bw_gbps),
        buffer_bytes=mib(buffer_mib),
    )


class TestEnergyTable:
    def test_default_hierarchy_ordering(self):
        table = DEFAULT_ENERGY_TABLE
        assert table.mac < table.local_buffer_access < table.sram_access < table.dram_access

    def test_scaled_table(self):
        table = DEFAULT_ENERGY_TABLE.scaled(2.0)
        assert table.mac == pytest.approx(2 * DEFAULT_ENERGY_TABLE.mac)
        assert table.dram_access == pytest.approx(2 * DEFAULT_ENERGY_TABLE.dram_access)

    def test_interconnect_overhead_only_touches_interconnect(self):
        table = DEFAULT_ENERGY_TABLE.with_interconnect_overhead(1.5)
        assert table.noc_hop == pytest.approx(1.5 * DEFAULT_ENERGY_TABLE.noc_hop)
        assert table.local_buffer_access == pytest.approx(
            1.5 * DEFAULT_ENERGY_TABLE.local_buffer_access)
        assert table.mac == DEFAULT_ENERGY_TABLE.mac
        assert table.dram_access == DEFAULT_ENERGY_TABLE.dram_access

    def test_table_is_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_ENERGY_TABLE.mac = 1.0


class TestHardware:
    def test_sub_accelerator_validation(self):
        with pytest.raises(HardwareConfigError):
            SubAcceleratorConfig("bad", NVDLA, num_pes=0,
                                 bandwidth_bytes_per_s=1e9, buffer_bytes=1024)
        with pytest.raises(HardwareConfigError):
            SubAcceleratorConfig("bad", NVDLA, num_pes=16,
                                 bandwidth_bytes_per_s=0, buffer_bytes=1024)
        with pytest.raises(HardwareConfigError):
            SubAcceleratorConfig("bad", NVDLA, num_pes=16,
                                 bandwidth_bytes_per_s=1e9, buffer_bytes=0)

    def test_bandwidth_per_cycle(self):
        sub = _sub(bw_gbps=16)
        assert sub.bandwidth_bytes_per_cycle == pytest.approx(16.0)

    def test_dram_bandwidth_defaults_to_noc_share(self):
        sub = _sub(bw_gbps=8)
        assert sub.dram_bandwidth_bytes_per_cycle == pytest.approx(8.0)

    def test_is_reconfigurable(self):
        assert _sub(style=None).is_reconfigurable
        assert not _sub(style=NVDLA).is_reconfigurable

    def test_with_dataflow_returns_copy(self):
        sub = _sub(style=NVDLA)
        other = sub.with_dataflow(SHIDIANNAO)
        assert other.dataflow is SHIDIANNAO
        assert sub.dataflow is NVDLA

    def test_chip_validation(self):
        with pytest.raises(HardwareConfigError):
            ChipConfig("bad", num_pes=0, noc_bandwidth_bytes_per_s=1e9,
                       global_buffer_bytes=1024)

    def test_chip_monolithic_uses_all_resources(self):
        chip = ChipConfig("c", num_pes=1024, noc_bandwidth_bytes_per_s=gbps(16),
                          global_buffer_bytes=mib(4))
        sub = chip.monolithic(NVDLA)
        assert sub.num_pes == 1024
        assert sub.bandwidth_bytes_per_s == pytest.approx(gbps(16))
        assert sub.buffer_bytes == mib(4)

    def test_chip_describe(self):
        chip = ChipConfig("c", num_pes=1024, noc_bandwidth_bytes_per_s=gbps(16),
                          global_buffer_bytes=mib(4))
        assert "1024 PEs" in chip.describe()


class TestReuseAnalysis:
    LAYER = conv2d("c", k=64, c=32, y=30, x=30, r=3, s=3)

    @pytest.mark.parametrize("style", ALL_STYLES, ids=lambda s: s.name)
    def test_access_counts_positive(self, style):
        mapping = build_mapping(self.LAYER, style, 256)
        reuse = analyse_reuse(mapping, mib(2))
        assert reuse.rf_accesses > 0
        assert reuse.local_fills > 0
        assert reuse.noc_tile_elements > 0
        assert reuse.dram_accesses > 0

    @pytest.mark.parametrize("style", ALL_STYLES, ids=lambda s: s.name)
    def test_tile_traffic_at_least_tensor_sizes(self, style):
        mapping = build_mapping(self.LAYER, style, 256)
        reuse = analyse_reuse(mapping, mib(8))
        assert reuse.noc_tile_elements >= self.LAYER.total_elements

    @pytest.mark.parametrize("style", ALL_STYLES, ids=lambda s: s.name)
    def test_local_fills_bounded_by_macs(self, style):
        mapping = build_mapping(self.LAYER, style, 256)
        reuse = analyse_reuse(mapping, mib(2))
        # No tensor can require more than one delivery per MAC plus the
        # partial-sum read-modify-write.
        assert reuse.local_fills <= 4 * self.LAYER.macs

    def test_rf_accesses_scale_with_macs(self):
        mapping = build_mapping(self.LAYER, NVDLA, 256)
        reuse = analyse_reuse(mapping, mib(2))
        assert reuse.rf_accesses == 4 * self.LAYER.macs

    def test_small_buffer_increases_dram_traffic(self):
        big_activation = conv2d("big", k=256, c=64, y=130, x=130, r=3, s=3)
        mapping = build_mapping(big_activation, NVDLA, 256)
        small = analyse_reuse(mapping, mib(0.25))
        large = analyse_reuse(mapping, mib(64))
        assert small.dram_accesses > large.dram_accesses
        assert small.noc_tile_elements >= large.noc_tile_elements

    def test_weight_stationary_restreams_inputs_when_channels_exceed_unrolling(self):
        # K much larger than the spatial output-channel unrolling forces the
        # (large) input activation to be re-streamed once per channel group.
        layer = conv2d("deep", k=1024, c=64, y=130, x=130, r=3, s=3)
        mapping = build_mapping(layer, NVDLA, 128)
        tight = analyse_reuse(mapping, mib(0.5))
        roomy = analyse_reuse(mapping, mib(256))
        assert tight.noc_tile_elements > roomy.noc_tile_elements

    def test_depthwise_nvdla_pays_per_mac_input_fills(self):
        layer = dwconv("d", c=64, y=34, x=34, r=3, s=3)
        nvdla = analyse_reuse(build_mapping(layer, NVDLA, 1024), mib(2))
        shi = analyse_reuse(build_mapping(layer, SHIDIANNAO, 1024), mib(2))
        assert nvdla.local_input_fills > shi.local_input_fills

    def test_output_stationary_minimises_output_traffic(self):
        layer = conv2d("c", k=32, c=32, y=34, x=34, r=3, s=3)
        shi = analyse_reuse(build_mapping(layer, SHIDIANNAO, 256), mib(2))
        nvdla = analyse_reuse(build_mapping(layer, NVDLA, 256), mib(2))
        assert shi.local_output_accesses <= nvdla.local_output_accesses

    def test_bytes_properties(self):
        mapping = build_mapping(self.LAYER, EYERISS, 256)
        reuse = analyse_reuse(mapping, mib(2))
        assert reuse.noc_tile_bytes == 2 * reuse.noc_tile_elements
        assert reuse.dram_bytes == 2 * reuse.dram_accesses


class TestLayerCost:
    LAYER = conv2d("c", k=64, c=32, y=30, x=30, r=3, s=3)

    def test_latency_positive_and_bounded_below_by_compute(self, cost_model):
        cost = cost_model.layer_cost(self.LAYER, _sub())
        assert cost.latency_cycles >= cost.compute_cycles
        assert cost.latency_s > 0

    def test_energy_breakdown_sums_to_total(self, cost_model):
        cost = cost_model.layer_cost(self.LAYER, _sub())
        assert sum(cost.energy_breakdown().values()) == pytest.approx(cost.energy_pj)

    def test_edp_is_product(self, cost_model):
        cost = cost_model.layer_cost(self.LAYER, _sub())
        assert cost.edp == pytest.approx(cost.energy_pj * 1e-12 * cost.latency_s)

    def test_bound_by_is_valid_resource(self, cost_model):
        cost = cost_model.layer_cost(self.LAYER, _sub())
        assert cost.bound_by in ("compute", "noc", "dram")

    def test_describe_mentions_layer(self, cost_model):
        assert "c on" in cost_model.layer_cost(self.LAYER, _sub()).describe()

    def test_metric_value_accessors(self, cost_model):
        cost = cost_model.layer_cost(self.LAYER, _sub())
        assert metric_value(cost, "edp") == cost.edp
        assert metric_value(cost, "latency") == cost.latency_s
        assert metric_value(cost, "energy") == cost.energy_pj
        with pytest.raises(ValueError):
            metric_value(cost, "throughput")


class TestCostModel:
    LAYER = conv2d("c", k=64, c=32, y=30, x=30, r=3, s=3)

    def test_results_are_cached(self):
        model = CostModel()
        sub = _sub()
        first = model.layer_cost(self.LAYER, sub)
        second = model.layer_cost(self.LAYER, sub)
        assert first is second
        assert model.cache_size() == 1
        model.clear_cache()
        assert model.cache_size() == 0

    def test_lower_bandwidth_never_faster(self, cost_model):
        fast = cost_model.layer_cost(self.LAYER, _sub(bw_gbps=32))
        slow = cost_model.layer_cost(self.LAYER, _sub(bw_gbps=1))
        assert slow.latency_cycles >= fast.latency_cycles

    def test_more_pes_never_slower(self, cost_model):
        small = cost_model.layer_cost(self.LAYER, _sub(pes=64))
        large = cost_model.layer_cost(self.LAYER, _sub(pes=1024))
        assert large.compute_cycles <= small.compute_cycles

    def test_rda_picks_best_style_and_pays_overhead(self, cost_model):
        rda_sub = _sub(style=None)
        rda_cost = cost_model.layer_cost(self.LAYER, rda_sub)
        fixed_costs = [cost_model.layer_cost(self.LAYER, _sub(style=style))
                       for style in ALL_STYLES]
        best_fixed = min(fixed_costs, key=lambda c: c.edp)
        assert rda_cost.energy_pj > best_fixed.energy_pj
        assert rda_cost.overhead_cycles > best_fixed.overhead_cycles

    def test_rda_without_style_raises_when_forced(self, cost_model):
        with pytest.raises(HardwareConfigError):
            cost_model._estimate_on(self.LAYER, None, _sub(style=None), reconfigurable=True)

    def test_best_style_prefers_nvdla_for_fc(self, cost_model):
        layer = fc("f", k=2048, c=1024)
        style, _ = cost_model.best_style(layer, _sub(style=NVDLA, pes=1024))
        assert style.name == "nvdla"

    def test_best_style_prefers_activation_parallel_for_depthwise(self, cost_model):
        layer = dwconv("d", c=64, y=34, x=34, r=3, s=3)
        style, _ = cost_model.best_style(layer, _sub(style=NVDLA, pes=1024))
        assert style.name in ("shidiannao", "eyeriss")

    def test_custom_energy_table_changes_energy(self):
        expensive = CostModel(energy_table=DEFAULT_ENERGY_TABLE.scaled(10.0))
        cheap = CostModel()
        sub = _sub()
        assert (expensive.layer_cost(self.LAYER, sub).energy_pj
                > cheap.layer_cost(self.LAYER, sub).energy_pj)


class TestFigure5Preferences:
    """The per-layer dataflow preferences illustrated in Fig. 5 of the paper."""

    def test_early_classification_layer_prefers_activation_parallelism(self, cost_model):
        layer = conv2d("early", k=32, c=16, y=114, x=114, r=3, s=3)
        sub_n = _sub(style=NVDLA, pes=4096, bw_gbps=64)
        sub_s = _sub(style=SHIDIANNAO, pes=4096, bw_gbps=64)
        assert (cost_model.layer_cost(layer, sub_s).latency_cycles
                < cost_model.layer_cost(layer, sub_n).latency_cycles)

    def test_late_classification_layer_prefers_channel_parallelism(self, cost_model):
        layer = pwconv("late", k=2048, c=1024, y=7, x=7)
        sub_n = _sub(style=NVDLA, pes=4096)
        sub_s = _sub(style=SHIDIANNAO, pes=4096)
        assert (cost_model.layer_cost(layer, sub_n).edp
                < cost_model.layer_cost(layer, sub_s).edp)

    def test_depthwise_layer_prefers_activation_parallelism(self, cost_model):
        layer = dwconv("dw", c=96, y=58, x=58, r=3, s=3)
        sub_n = _sub(style=NVDLA, pes=4096)
        sub_s = _sub(style=SHIDIANNAO, pes=4096)
        assert (cost_model.layer_cost(layer, sub_s).edp
                < cost_model.layer_cost(layer, sub_n).edp)
