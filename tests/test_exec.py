"""Tests for the execution engine: tasks, backends, and the persistent cache."""

from __future__ import annotations

import json
import pickle

import pytest

import repro.core.evaluator
from repro.accel.builders import enumerate_fdas, make_fda, make_rda
from repro.core.dse import HeraldDSE
from repro.core.evaluator import evaluate_design, evaluate_designs
from repro.core.partitioner import PartitionSearch
from repro.core.scheduler import HeraldScheduler
from repro.dataflow.styles import EYERISS, NVDLA, SHIDIANNAO
from repro.exceptions import SearchError
from repro.exec import (
    EvaluationTask,
    PersistentCostCache,
    ProcessPoolBackend,
    SerialBackend,
    run_evaluation_task,
)
from repro.maestro.cost import CostModel


def _make_dse(backend=None, cost_model=None):
    model = cost_model or CostModel()
    scheduler = HeraldScheduler(model)
    search = PartitionSearch(cost_model=model, scheduler=scheduler,
                             pe_steps=2, bw_steps=1)
    return HeraldDSE(cost_model=model, scheduler=scheduler,
                     partition_search=search, backend=backend)


class TestEvaluationTask:
    def test_tasks_are_picklable(self, tiny_chip, small_workload):
        task = EvaluationTask(0, make_fda(tiny_chip, NVDLA), small_workload,
                              category="fda")
        clone = pickle.loads(pickle.dumps(task))
        assert clone.design.name == task.design.name
        assert clone.workload.name == task.workload.name
        assert clone.category == "fda"

    def test_run_evaluation_task_matches_direct_evaluation(self, tiny_chip,
                                                           small_workload):
        model = CostModel()
        scheduler = HeraldScheduler(model)
        design = make_fda(tiny_chip, SHIDIANNAO)
        task = EvaluationTask(7, design, small_workload)
        via_task = run_evaluation_task(task, model, scheduler)
        direct = evaluate_design(design, small_workload, cost_model=model,
                                 scheduler=scheduler)
        assert via_task.latency_s == direct.latency_s
        assert via_task.energy_mj == direct.energy_mj

    def test_rda_task_round_trips_through_pickle(self, tiny_chip, small_workload):
        # RDA designs embed a ``dataflow=None`` sub-accelerator and the styles
        # live in the cost model, so this exercises the style pickle path too.
        task = EvaluationTask(1, make_rda(tiny_chip), small_workload, category="rda")
        clone = pickle.loads(pickle.dumps(task))
        assert clone.design.sub_accelerators[0].is_reconfigurable


class TestSerialBackend:
    def test_preserves_task_order(self, tiny_chip, small_workload):
        backend = SerialBackend()
        tasks = [EvaluationTask(i, design, small_workload, category="fda")
                 for i, design in enumerate(enumerate_fdas(tiny_chip))]
        results = backend.run(tasks)
        assert [r.design.name for r in results] == [t.design.name for t in tasks]
        assert backend.last_cold_evaluations > 0

    def test_second_run_is_fully_cached(self, tiny_chip, small_workload):
        backend = SerialBackend()
        tasks = [EvaluationTask(0, make_fda(tiny_chip, NVDLA), small_workload)]
        first = backend.run(tasks)[0]
        entries_after_first = backend.cost_model.cache_size()
        second = backend.run(tasks)[0]
        # Shape dedupe queries each (shape, hardware) pair exactly once and
        # the scheduler's per-design ranking memo can satisfy the whole second
        # run without touching the cost model, so the warm proof is: zero cold
        # evaluations, no new memo entries, identical metrics.
        assert backend.last_cold_evaluations == 0
        assert backend.cost_model.cache_size() == entries_after_first
        assert (second.latency_s, second.energy_mj, second.edp) == \
            (first.latency_s, first.energy_mj, first.edp)

    def test_duplicate_task_ids_rejected_like_pool_backend(self, tiny_chip,
                                                           small_workload):
        # Both backends must stay interchangeable on the same input.
        tasks = [EvaluationTask(3, make_fda(tiny_chip, NVDLA), small_workload),
                 EvaluationTask(3, make_fda(tiny_chip, SHIDIANNAO), small_workload)]
        with pytest.raises(SearchError, match="duplicate task_id"):
            SerialBackend().run(tasks)


class TestProcessPoolBackend:
    def test_rejects_bad_parameters(self):
        with pytest.raises(SearchError):
            ProcessPoolBackend(jobs=0)
        with pytest.raises(SearchError):
            ProcessPoolBackend(jobs=2, chunk_size=0)

    def test_matches_serial_backend_on_small_dse(self, small_workload, tiny_chip):
        serial_space = _make_dse(SerialBackend()).explore(
            small_workload, tiny_chip, include_three_way=False)
        pool_backend = ProcessPoolBackend(jobs=2)
        pool_space = _make_dse(pool_backend).explore(
            small_workload, tiny_chip, include_three_way=False)

        assert len(pool_space.points) == len(serial_space.points)
        for ours, theirs in zip(pool_space.points, serial_space.points):
            assert ours.design.name == theirs.design.name
            assert ours.category == theirs.category
            assert ours.latency_s == pytest.approx(theirs.latency_s, rel=1e-12)
            assert ours.energy_mj == pytest.approx(theirs.energy_mj, rel=1e-12)
        for category in serial_space.categories():
            assert (pool_space.best(category).design.name
                    == serial_space.best(category).design.name)

    def test_worker_cache_entries_flow_back_to_parent(self, small_workload,
                                                      tiny_chip):
        model = CostModel()
        backend = ProcessPoolBackend(jobs=2, cost_model=model)
        tasks = [EvaluationTask(i, design, small_workload)
                 for i, design in enumerate(enumerate_fdas(tiny_chip))]
        assert model.cache_size() == 0
        backend.run(tasks)
        assert model.cache_size() > 0
        assert backend.last_new_cache_entries == model.cache_size()

    def test_empty_task_list(self):
        assert ProcessPoolBackend(jobs=2).run([]) == []

    def test_duplicate_task_ids_rejected_before_dispatch(self, tiny_chip,
                                                         small_workload):
        # Results are restored through a task_id -> result map, so duplicate
        # ids would silently drop a result; they must fail fast instead.
        tasks = [EvaluationTask(0, make_fda(tiny_chip, NVDLA), small_workload),
                 EvaluationTask(0, make_fda(tiny_chip, SHIDIANNAO), small_workload)]
        backend = ProcessPoolBackend(jobs=2)
        with pytest.raises(SearchError, match="duplicate task_id"):
            backend.run(tasks)


class TestPersistentCostCache:
    def test_cold_write_then_warm_read_identical_costs(self, tmp_path, tiny_chip,
                                                       small_workload):
        path = str(tmp_path / "cache.json")
        design = make_fda(tiny_chip, EYERISS)

        cold_model = CostModel()
        cold = evaluate_design(design, small_workload, cost_model=cold_model,
                               scheduler=HeraldScheduler(cold_model))
        cache = PersistentCostCache(path)
        assert cache.capture(cold_model) == cold_model.cache_size()
        cache.save()

        warm_model = CostModel()
        reloaded = PersistentCostCache(path)
        assert len(reloaded) == cold_model.cache_size()
        reloaded.warm(warm_model)
        warm = evaluate_design(design, small_workload, cost_model=warm_model,
                               scheduler=HeraldScheduler(warm_model))
        assert warm_model.misses == 0, "warm run must perform zero cold evaluations"
        assert warm.latency_s == cold.latency_s
        assert warm.energy_mj == cold.energy_mj
        for ours, theirs in zip(warm.schedule.entries, cold.schedule.entries):
            assert ours.cost == theirs.cost

    def test_missing_file_is_empty(self, tmp_path):
        cache = PersistentCostCache(str(tmp_path / "does-not-exist.json"))
        assert len(cache) == 0
        assert not cache.corrupted

    def test_corrupted_file_falls_back_to_cold_start(self, tmp_path, tiny_chip,
                                                     small_workload):
        path = tmp_path / "cache.json"
        path.write_text("{this is not json")
        cache = PersistentCostCache(str(path))
        assert cache.corrupted
        assert len(cache) == 0
        # The corrupted cache must not break an exploration, and saving
        # afterwards repairs the file.
        backend = SerialBackend(cache=cache)
        backend.run([EvaluationTask(0, make_fda(tiny_chip, NVDLA), small_workload)])
        assert len(cache) > 0
        from repro.exec.cache import CACHE_FORMAT_VERSION
        assert json.loads(path.read_text())["version"] == CACHE_FORMAT_VERSION

    def test_unwritable_cache_path_does_not_lose_results(self, tiny_chip,
                                                         small_workload):
        backend = SerialBackend(
            cache=PersistentCostCache("/proc/does-not-exist/cache.json"))
        results = backend.run(
            [EvaluationTask(0, make_fda(tiny_chip, NVDLA), small_workload)])
        assert len(results) == 1
        assert isinstance(backend.cache_save_error, OSError)

    def test_wrong_version_is_treated_as_corrupted(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 999, "entries": []}))
        cache = PersistentCostCache(str(path))
        assert cache.corrupted

    def test_semantically_invalid_entry_is_treated_as_corrupted(
            self, tmp_path, tiny_chip, small_workload):
        # Valid JSON whose layer violates Layer.__post_init__ (k=0) must
        # degrade to a cold start, not crash the exploration.
        path = str(tmp_path / "cache.json")
        backend = SerialBackend(cache=PersistentCostCache(path))
        backend.run([EvaluationTask(0, make_fda(tiny_chip, NVDLA), small_workload)])
        payload = json.loads(open(path).read())
        payload["entries"][0]["cost"]["layer"]["k"] = 0
        with open(path, "w") as handle:
            json.dump(payload, handle)
        cache = PersistentCostCache(path)
        assert cache.corrupted
        assert len(cache) == 0

    def test_different_cost_model_config_is_not_served_stale(
            self, tmp_path, tiny_chip, small_workload):
        from dataclasses import replace
        from repro.maestro.energy import DEFAULT_ENERGY_TABLE

        path = str(tmp_path / "cache.json")
        first = SerialBackend(cache=PersistentCostCache(path))
        first.run([EvaluationTask(0, make_fda(tiny_chip, NVDLA), small_workload)])

        other_model = CostModel(
            energy_table=replace(DEFAULT_ENERGY_TABLE, mac=123.0))
        cache = PersistentCostCache(path)
        assert cache.warm(other_model) == 0, \
            "entries from a differently-configured model must not be installed"
        assert other_model.cache_size() == 0

        same_model = CostModel()
        assert PersistentCostCache(path).warm(same_model) > 0

    def test_warm_run_does_not_rewrite_the_cache_file(self, tmp_path, tiny_chip,
                                                      small_workload):
        import os
        path = str(tmp_path / "cache.json")
        tasks = [EvaluationTask(0, make_fda(tiny_chip, NVDLA), small_workload)]
        SerialBackend(cache=PersistentCostCache(path)).run(tasks)
        mtime = os.stat(path).st_mtime_ns
        SerialBackend(cache=PersistentCostCache(path)).run(tasks)
        assert os.stat(path).st_mtime_ns == mtime

    def test_backend_round_trip_via_cache_file(self, tmp_path, tiny_chip,
                                               small_workload):
        path = str(tmp_path / "cache.json")
        tasks = [EvaluationTask(i, design, small_workload)
                 for i, design in enumerate(enumerate_fdas(tiny_chip))]

        first = SerialBackend(cache=PersistentCostCache(path))
        first.run(tasks)
        assert first.last_cold_evaluations > 0

        second = SerialBackend(cache=PersistentCostCache(path))
        second.run(tasks)
        assert second.last_cold_evaluations == 0


class TestEvaluateDesignsSchedulerReuse:
    def test_builds_exactly_one_scheduler_when_none_supplied(
            self, tiny_chip, small_workload, monkeypatch):
        created = []

        class CountingScheduler(HeraldScheduler):
            def __init__(self, *args, **kwargs):
                created.append(self)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(repro.core.evaluator, "HeraldScheduler", CountingScheduler)
        designs = enumerate_fdas(tiny_chip)
        results = evaluate_designs(designs, small_workload)
        assert len(results) == len(designs)
        assert len(created) == 1, "evaluate_designs must reuse one scheduler"

    def test_routes_through_backend_when_given(self, tiny_chip, small_workload):
        backend = SerialBackend()
        designs = enumerate_fdas(tiny_chip)
        via_backend = evaluate_designs(designs, small_workload, backend=backend)
        direct = evaluate_designs(designs, small_workload)
        assert set(via_backend) == set(direct)
        for name in direct:
            assert via_backend[name].latency_s == direct[name].latency_s

    def test_rejects_cost_model_alongside_backend(self, tiny_chip, small_workload):
        with pytest.raises(ValueError):
            evaluate_designs(enumerate_fdas(tiny_chip), small_workload,
                             cost_model=CostModel(), backend=SerialBackend())


class TestDSETaskEnumeration:
    def test_enumeration_covers_all_categories(self, small_workload, tiny_chip):
        dse = _make_dse()
        tasks = list(dse.enumerate_tasks(small_workload, tiny_chip,
                                         include_three_way=False))
        categories = {task.category for task in tasks}
        assert categories == {"fda", "sm-fda", "rda", "hda"}
        assert [task.task_id for task in tasks] == list(range(len(tasks)))

    def test_hda_tasks_carry_partitions_and_groups(self, small_workload, tiny_chip):
        dse = _make_dse()
        hda_tasks = [task
                     for task in dse.enumerate_tasks(small_workload, tiny_chip,
                                                     include_three_way=False)
                     if task.category == "hda"]
        assert hda_tasks
        for task in hda_tasks:
            assert task.group.startswith("hda:")
            assert sum(task.pe_partition) == tiny_chip.num_pes

    def test_binary_strategy_adds_refinement_round(self, small_workload, tiny_chip):
        model = CostModel()
        scheduler = HeraldScheduler(model)
        coarse = PartitionSearch(cost_model=model, scheduler=scheduler,
                                 pe_steps=4, bw_steps=1)
        binary = PartitionSearch(cost_model=model, scheduler=scheduler,
                                 pe_steps=4, bw_steps=1, strategy="binary")
        combo = [(NVDLA, SHIDIANNAO)]
        space_coarse = HeraldDSE(cost_model=model, scheduler=scheduler,
                                 partition_search=coarse).explore(
            small_workload, tiny_chip, hda_combinations=combo)
        space_binary = HeraldDSE(cost_model=model, scheduler=scheduler,
                                 partition_search=binary).explore(
            small_workload, tiny_chip, hda_combinations=combo)
        assert len(space_binary.by_category("hda")) > len(space_coarse.by_category("hda"))
        assert space_binary.best("hda").edp <= space_coarse.best("hda").edp
