"""Tests for the model-graph substrate (edges, ordering, statistics)."""

import pytest

from repro.exceptions import GraphError
from repro.models.graph import ModelGraph
from repro.models.layer import conv2d, fc, pwconv


def _three_layer_graph() -> ModelGraph:
    layers = [
        conv2d("a", k=8, c=3, y=18, x=18, r=3, s=3),
        pwconv("b", k=16, c=8, y=16, x=16),
        fc("c", k=10, c=16 * 16 * 16),
    ]
    return ModelGraph.from_layers("toy", layers)


class TestConstruction:
    def test_from_layers_counts(self):
        graph = _three_layer_graph()
        assert len(graph) == 3

    def test_layers_are_attributed_to_model(self):
        graph = _three_layer_graph()
        assert all(layer.model_name == "toy" for layer in graph.layers)

    def test_duplicate_layer_names_rejected(self):
        graph = ModelGraph(name="dup")
        graph.add_layer(fc("same", k=4, c=4))
        with pytest.raises(GraphError):
            graph.add_layer(fc("same", k=8, c=8))

    def test_sequential_chain_edges(self):
        graph = _three_layer_graph()
        assert ("a", "b") in graph.edges()
        assert ("b", "c") in graph.edges()

    def test_non_sequential_graph_has_no_edges(self):
        graph = ModelGraph.from_layers("flat", [fc("a", k=4, c=4), fc("b", k=4, c=4)],
                                       sequential=False)
        assert graph.edges() == []

    def test_contains_and_iter(self):
        graph = _three_layer_graph()
        assert "a" in graph and "missing" not in graph
        assert [layer.name for layer in graph] == ["a", "b", "c"]


class TestEdges:
    def test_add_edge_unknown_layer_rejected(self):
        graph = _three_layer_graph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "nope")

    def test_self_edge_rejected(self):
        graph = _three_layer_graph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "a")

    def test_cycle_rejected(self):
        graph = _three_layer_graph()
        with pytest.raises(GraphError):
            graph.add_edge("c", "a")

    def test_cycle_rejection_leaves_graph_usable(self):
        graph = _three_layer_graph()
        with pytest.raises(GraphError):
            graph.add_edge("c", "a")
        assert len(graph.dependence_order()) == 3

    def test_predecessors_and_successors(self):
        graph = _three_layer_graph()
        assert [l.name for l in graph.predecessors("b")] == ["a"]
        assert [l.name for l in graph.successors("b")] == ["c"]

    def test_skip_connection_edge(self):
        graph = _three_layer_graph()
        graph.add_edge("a", "c")
        assert [l.name for l in graph.predecessors("c")] == ["a", "b"]


class TestOrdering:
    def test_dependence_order_respects_edges(self):
        graph = _three_layer_graph()
        order = [layer.name for layer in graph.dependence_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_dependence_order_with_branches(self):
        graph = ModelGraph(name="branchy")
        for name in ("in", "left", "right", "out"):
            graph.add_layer(fc(name, k=4, c=4))
        graph.add_edge("in", "left")
        graph.add_edge("in", "right")
        graph.add_edge("left", "out")
        graph.add_edge("right", "out")
        order = [layer.name for layer in graph.dependence_order()]
        assert order[0] == "in" and order[-1] == "out"

    def test_layer_lookup_error(self):
        graph = _three_layer_graph()
        with pytest.raises(GraphError):
            graph.layer("missing")


class TestStatistics:
    def test_total_macs_is_sum(self):
        graph = _three_layer_graph()
        assert graph.total_macs == sum(layer.macs for layer in graph.layers)

    def test_total_parameters_is_sum(self):
        graph = _three_layer_graph()
        assert graph.total_parameters == sum(l.filter_elements for l in graph.layers)

    def test_heterogeneity_has_min_le_max(self):
        stats = _three_layer_graph().heterogeneity()
        assert stats["min"] <= stats["median"] <= stats["max"]

    def test_describe_mentions_name(self):
        assert "toy" in _three_layer_graph().describe()


class TestSubgraph:
    def test_subgraph_keeps_induced_edges(self):
        graph = _three_layer_graph()
        sub = graph.subgraph(["a", "b"])
        assert len(sub) == 2
        assert ("a", "b") in sub.edges()

    def test_subgraph_drops_external_edges(self):
        graph = _three_layer_graph()
        sub = graph.subgraph(["a", "c"])
        assert sub.edges() == []

    def test_subgraph_unknown_layer_rejected(self):
        with pytest.raises(GraphError):
            _three_layer_graph().subgraph(["a", "zzz"])
