"""Tests for the model zoo: every Table I / Table II model builds correctly."""

import pytest

from repro.models.layer import LayerType
from repro.models.zoo import available_models, build_model, MODEL_BUILDERS


ALL_MODEL_NAMES = available_models()


class TestRegistry:
    def test_all_expected_models_present(self):
        expected = {
            "resnet50", "mobilenet_v2", "mobilenet_v1", "unet", "brq_handpose",
            "focal_depthnet", "ssd_resnet34", "ssd_mobilenet_v1", "gnmt",
        }
        assert expected.issubset(set(ALL_MODEL_NAMES))

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("not-a-model")

    def test_builders_registry_matches_available(self):
        assert set(MODEL_BUILDERS) == set(ALL_MODEL_NAMES)


@pytest.mark.parametrize("model_name", ALL_MODEL_NAMES)
class TestEveryModel:
    def test_builds_without_error(self, model_name):
        graph = build_model(model_name)
        assert len(graph) > 0

    def test_graph_name_matches(self, model_name):
        assert build_model(model_name).name == model_name

    def test_all_macs_positive(self, model_name):
        graph = build_model(model_name)
        assert all(layer.macs > 0 for layer in graph.layers)

    def test_dependence_order_is_complete(self, model_name):
        graph = build_model(model_name)
        assert len(graph.dependence_order()) == len(graph)

    def test_layer_names_unique(self, model_name):
        graph = build_model(model_name)
        names = [layer.name for layer in graph.layers]
        assert len(names) == len(set(names))

    def test_heterogeneity_ratio_positive(self, model_name):
        stats = build_model(model_name).heterogeneity()
        assert stats["min"] > 0
        assert stats["max"] >= stats["min"]


class TestSpecificModels:
    def test_resnet50_layer_count(self):
        # 1 stem + 16 bottlenecks x 3 convs + 4 projections + 1 FC = 54 layers.
        assert len(build_model("resnet50")) == 54

    def test_resnet50_total_macs_about_4_gmacs(self):
        macs = build_model("resnet50").total_macs
        assert 3e9 < macs < 5.5e9

    def test_mobilenet_v2_has_depthwise_layers(self):
        graph = build_model("mobilenet_v2")
        assert any(layer.layer_type is LayerType.DWCONV for layer in graph.layers)

    def test_mobilenet_v2_median_ratio_matches_table_i(self):
        # Table I reports a median channel-activation ratio of 13.714.
        stats = build_model("mobilenet_v2").heterogeneity()
        assert stats["median"] == pytest.approx(13.714, rel=0.05)

    def test_resnet50_median_ratio_matches_table_i(self):
        # Table I reports a median channel-activation ratio of 18.286.
        stats = build_model("resnet50").heterogeneity()
        assert stats["median"] == pytest.approx(18.286, rel=0.05)

    def test_unet_median_ratio_matches_table_i(self):
        # Table I reports a median channel-activation ratio of 1.855.
        stats = build_model("unet").heterogeneity()
        assert stats["median"] == pytest.approx(1.855, rel=0.1)

    def test_unet_has_upconv_layers(self):
        graph = build_model("unet")
        assert any(layer.layer_type is LayerType.UPCONV for layer in graph.layers)

    def test_unet_first_layer_activation_parallelism(self):
        # Sec. V-B quotes ~334 K as the maximum activation parallelism (UNet conv 1).
        first = build_model("unet").layers[0]
        assert 2.5e5 < first.out_y * first.out_x < 4e5

    def test_mobilenet_v1_layer_count(self):
        # Stem + 13 separable blocks x 2 + FC = 28 layers.
        assert len(build_model("mobilenet_v1")) == 28

    def test_brq_handpose_has_1024_wide_fc(self):
        graph = build_model("brq_handpose")
        assert any(layer.layer_type is LayerType.FC and layer.k == 1024
                   for layer in graph.layers)

    def test_depthnet_has_16m_channel_parallelism_fc(self):
        # Sec. V-B: the maximum channel parallelism is ~16.8 M (DepthNet FC layer 2).
        graph = build_model("focal_depthnet")
        assert any(layer.k * layer.c > 16e6 for layer in graph.layers
                   if layer.layer_type is LayerType.FC)

    def test_ssd_models_have_detection_heads(self):
        for name in ("ssd_resnet34", "ssd_mobilenet_v1"):
            graph = build_model(name)
            assert any("head" in layer.name for layer in graph.layers)

    def test_gnmt_is_all_gemm(self):
        graph = build_model("gnmt")
        assert all(layer.layer_type is LayerType.GEMM for layer in graph.layers)

    def test_gnmt_has_encoder_and_decoder_stacks(self):
        names = [layer.name for layer in build_model("gnmt").layers]
        assert sum("encoder_lstm" in n for n in names) == 8
        assert sum("decoder_lstm" in n for n in names) == 8

    def test_models_are_rebuilt_fresh(self):
        a = build_model("resnet50")
        b = build_model("resnet50")
        assert a is not b
        assert len(a) == len(b)
