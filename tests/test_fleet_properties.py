"""Property-based tests of fleet dispatch: invariants across every policy.

For random DAG workloads crossed with random arrival traces and random fleet
compositions, every dispatch policy must satisfy the fleet invariants:

* **partition** — each frame is dispatched to exactly one chip (the
  assignment map covers every frame, per-chip frame maps tile the global
  frame set without overlap);
* **per-chip validity** — every chip's schedule passes
  :meth:`Schedule.validate` (producer edges, non-overlap, completeness) and
  no frame starts before its release;
* **aggregation honesty** — fleet-level percentiles equal recomputing the
  percentile over the pooled per-frame latencies, and the fleet miss count
  equals recounting strict-deadline violations frame by frame;
* **single-chip degeneracy** — a one-chip fleet produces the bare
  :class:`ServingSimulator` schedule and report, whatever the policy.
"""

from __future__ import annotations

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import percentile
from repro.core.scheduler import HeraldScheduler
from repro.dataflow.styles import NVDLA, SHIDIANNAO
from repro.maestro.cost import CostModel
from repro.maestro.hardware import ChipConfig, SubAcceleratorConfig
from repro.models.graph import ModelGraph
from repro.models.layer import fc
from repro.serve import (
    Fleet,
    FleetSimulator,
    ServingSimulator,
    StreamSpec,
    StreamingWorkload,
)
from repro.accel.design import AcceleratorDesign, AcceleratorKind
from repro.units import gbps, mib

#: One shared cost model: layer shapes repeat across examples, so the memo
#: keeps the sweep fast without affecting decisions (costs are pure).
_COST_MODEL = CostModel()

_ALL_POLICIES = ("passthrough", "round-robin", "least-outstanding",
                 "earliest-completion", "sticky")


def _chip(pes: int, label: str) -> AcceleratorDesign:
    subs = (
        SubAcceleratorConfig(name="a0", dataflow=NVDLA, num_pes=pes,
                             bandwidth_bytes_per_s=gbps(4),
                             buffer_bytes=mib(1)),
        SubAcceleratorConfig(name="a1", dataflow=SHIDIANNAO, num_pes=pes // 2,
                             bandwidth_bytes_per_s=gbps(4),
                             buffer_bytes=mib(1)),
    )
    chip = ChipConfig(name=f"{label}-chip", num_pes=pes + pes // 2,
                      noc_bandwidth_bytes_per_s=gbps(8),
                      global_buffer_bytes=mib(1))
    return AcceleratorDesign(name=label, kind=AcceleratorKind.HDA, chip=chip,
                             sub_accelerators=subs)


def _fleet(num_chips: int, heterogeneous: bool) -> Fleet:
    if heterogeneous and num_chips > 1:
        chips = tuple(_chip(128 if index % 2 == 0 else 32, f"c{index}")
                      for index in range(num_chips))
        return Fleet(name="hetero", chips=chips)
    return Fleet.homogeneous(_chip(128, "homo"), num_chips)


def _random_graph(name: str, n: int, edge_seed: int, dims) -> ModelGraph:
    rng = random_module.Random(edge_seed)
    layers = [fc(f"l{i}", k=dims[i], c=dims[(i * 7 + 3) % len(dims)])
              for i in range(n)]
    graph = ModelGraph.from_layers(name, layers)
    for i in range(n):
        for j in range(i + 2, n):
            if rng.random() < 0.3:
                graph.add_edge(f"l{i}", f"l{j}")
    return graph


def _random_streaming(n, edge_seed, dims, num_streams, frames, fps, jitter_scale
                      ) -> StreamingWorkload:
    streams, models = [], {}
    for index in range(num_streams):
        name = f"m{index}"
        models[name] = _random_graph(name, max(3, n - index), edge_seed + index,
                                     dims)
        period = 1.0 / fps
        streams.append(StreamSpec(
            model_name=name, fps=fps, frames=frames,
            phase_s=(index / (index + 1)) * period,
            jitter_s=jitter_scale * period, seed=edge_seed,
        ))
    return StreamingWorkload("prop-fleet", streams=streams, models=models)


_fleet_params = dict(
    n=st.integers(min_value=3, max_value=7),
    edge_seed=st.integers(min_value=0, max_value=2**31),
    dims=st.lists(st.sampled_from([4, 8, 16, 64, 256]),
                  min_size=12, max_size=12),
    num_streams=st.integers(min_value=1, max_value=3),
    frames=st.integers(min_value=1, max_value=5),
    fps=st.sampled_from([1e2, 1e4, 1e6]),
    jitter_scale=st.sampled_from([0.0, 0.4]),
    num_chips=st.integers(min_value=1, max_value=4),
    heterogeneous=st.booleans(),
    policy=st.sampled_from(_ALL_POLICIES),
)


class TestFleetInvariants:
    @given(**_fleet_params)
    @settings(max_examples=40, deadline=None)
    def test_partition_validity_and_aggregation(
            self, n, edge_seed, dims, num_streams, frames, fps, jitter_scale,
            num_chips, heterogeneous, policy):
        streaming = _random_streaming(n, edge_seed, dims, num_streams, frames,
                                      fps, jitter_scale)
        fleet = _fleet(num_chips, heterogeneous)
        simulator = FleetSimulator(cost_model=_COST_MODEL,
                                   scheduler=HeraldScheduler(_COST_MODEL))
        result = simulator.simulate(streaming, fleet, policy=policy)
        plan, report = result.plan, result.report

        # --- partition: every frame on exactly one chip --------------------
        expected_frames = {(stream.model_name, index)
                           for stream in streaming.streams
                           for index in range(stream.frames)}
        assert set(plan.assignments) == expected_frames
        assert all(0 <= chip < fleet.num_chips
                   for chip in plan.assignments.values())
        tiled = [global_frame for frame_map in plan.frame_maps
                 for global_frame in frame_map.values()]
        assert len(tiled) == len(expected_frames)
        assert set(tiled) == expected_frames

        # --- per-chip schedules validate, releases respected ---------------
        for chip_index, chip_result in enumerate(result.chip_results):
            workload = plan.chip_workloads[chip_index]
            if workload is None:
                assert chip_result.schedule is None
                continue
            schedule = chip_result.schedule
            spec = workload.to_workload_spec()
            schedule.validate(expected_layers={
                instance.instance_id: instance.num_layers
                for instance in spec.instances()})
            clock = chip_result.chip.sub_accelerators[0].clock_hz
            releases = workload.release_cycles(clock)
            for entry in schedule.entries:
                assert entry.start_cycle >= releases[entry.instance_id] - 1e-6

        # --- aggregation: pooled percentiles and recounted misses ----------
        pooled = [latency for chip_result in result.chip_results
                  for latency in chip_result.frame_latencies_s.values()]
        assert len(pooled) == len(expected_frames)
        for q, value in ((50.0, report.p50_latency_s),
                         (95.0, report.p95_latency_s),
                         (99.0, report.p99_latency_s)):
            assert value == percentile(pooled, q)

        # Recount misses independently, with the single seconds-domain
        # definition the per-stream accounting uses (strict latency > bound).
        recounted = 0
        for chip_index, chip_result in enumerate(result.chip_results):
            workload = plan.chip_workloads[chip_index]
            if workload is None:
                continue
            clock = chip_result.chip.sub_accelerators[0].clock_hz
            records = chip_result.schedule.frame_records()
            for stream in workload.streams:
                releases = stream.release_times_s()
                bound = stream.effective_deadline_s
                for index in range(stream.frames):
                    finish_s = (records[f"{stream.model_name}#{index}"]
                                ["finish_cycle"] / clock)
                    if finish_s - releases[index] > bound:
                        recounted += 1
        assert report.missed_frames == recounted
        # ... and the fleet total must equal the sum of the per-chip report
        # rows — one miss definition everywhere.
        assert report.missed_frames == sum(
            chip_result.report.missed_frames
            for chip_result in result.chip_results)
        assert report.total_frames == len(expected_frames)

    @given(**_fleet_params)
    @settings(max_examples=20, deadline=None)
    def test_single_chip_fleet_is_the_bare_simulator(
            self, n, edge_seed, dims, num_streams, frames, fps, jitter_scale,
            num_chips, heterogeneous, policy):
        streaming = _random_streaming(n, edge_seed, dims, num_streams, frames,
                                      fps, jitter_scale)
        chip = _chip(128, "solo")
        scheduler = HeraldScheduler(_COST_MODEL)
        bare = ServingSimulator(scheduler).simulate(streaming,
                                                    chip.sub_accelerators)
        simulator = FleetSimulator(cost_model=_COST_MODEL,
                                   scheduler=HeraldScheduler(_COST_MODEL))
        result = simulator.simulate(streaming, Fleet.homogeneous(chip, 1),
                                    policy=policy)
        chip_result = result.chip_results[0]
        bare_timeline = [(e.instance_id, e.layer_index, e.sub_accelerator,
                          e.start_cycle, e.finish_cycle)
                         for e in bare.schedule.entries]
        fleet_timeline = [(e.instance_id, e.layer_index, e.sub_accelerator,
                           e.start_cycle, e.finish_cycle)
                          for e in chip_result.schedule.entries]
        assert fleet_timeline == bare_timeline
        assert ([stats.summary() for stats in chip_result.report.streams]
                == [stats.summary() for stats in bare.report.streams])
