"""Tests for the schedule data structures, accounting, and validation."""

import json

import pytest

from repro.core.schedule import (
    LOAD_IMBALANCE_UNUSED_SENTINEL,
    Schedule,
    ScheduledLayer,
)
from repro.exceptions import SchedulingError
from repro.maestro.cost import CostModel
from repro.maestro.hardware import SubAcceleratorConfig
from repro.dataflow.styles import NVDLA
from repro.models.layer import fc
from repro.units import gbps, mib


def _make_cost(layer):
    sub = SubAcceleratorConfig("acc", NVDLA, num_pes=64,
                               bandwidth_bytes_per_s=gbps(4), buffer_bytes=mib(1))
    return CostModel().layer_cost(layer, sub)


def _entry(name, instance, index, acc, start, finish):
    layer = fc(name, k=64, c=64)
    return ScheduledLayer(layer=layer, instance_id=instance, layer_index=index,
                          sub_accelerator=acc, start_cycle=start, finish_cycle=finish,
                          cost=_make_cost(layer))


def _empty_schedule():
    return Schedule(sub_accelerator_names=("a0", "a1"), clock_hz=1e9,
                    pes_per_sub_accelerator={"a0": 64, "a1": 64})


class TestConstruction:
    def test_add_and_length(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        assert len(schedule) == 1

    def test_unknown_sub_accelerator_rejected(self):
        schedule = _empty_schedule()
        with pytest.raises(SchedulingError):
            schedule.add(_entry("l0", "m#0", 0, "zzz", 0, 100))

    def test_negative_duration_rejected(self):
        schedule = _empty_schedule()
        with pytest.raises(SchedulingError):
            schedule.add(_entry("l0", "m#0", 0, "a0", 100, 50))

    def test_extend(self):
        schedule = _empty_schedule()
        schedule.extend([_entry("l0", "m#0", 0, "a0", 0, 100),
                         _entry("l1", "m#0", 1, "a1", 100, 150)])
        assert len(schedule) == 2


class TestAccounting:
    def _populated(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        schedule.add(_entry("l1", "m#0", 1, "a1", 100, 250))
        schedule.add(_entry("l0", "n#0", 0, "a1", 250, 300))
        return schedule

    def test_makespan(self):
        assert self._populated().makespan_cycles == 300
        assert self._populated().makespan_seconds == pytest.approx(300e-9)

    def test_empty_makespan_zero(self):
        assert _empty_schedule().makespan_cycles == 0.0

    def test_busy_and_idle_cycles(self):
        schedule = self._populated()
        assert schedule.busy_cycles("a0") == 100
        assert schedule.busy_cycles("a1") == 200
        assert schedule.idle_cycles("a0") == 200

    def test_utilisation(self):
        schedule = self._populated()
        assert schedule.utilisation("a0") == pytest.approx(100 / 300)
        assert schedule.utilisation("a1") == pytest.approx(200 / 300)

    def test_load_imbalance(self):
        assert self._populated().load_imbalance() == pytest.approx(2.0)

    def test_layer_counts(self):
        assert self._populated().layer_counts() == {"a0": 1, "a1": 2}

    def test_dynamic_energy_is_sum_of_layers(self):
        schedule = self._populated()
        assert schedule.dynamic_energy_pj == pytest.approx(
            sum(entry.energy_pj for entry in schedule.entries))

    def test_idle_energy_zero_without_leakage(self):
        assert self._populated().idle_energy_pj == 0.0

    def test_idle_energy_with_leakage(self):
        schedule = self._populated()
        schedule.idle_energy_pj_per_cycle_per_pe = 0.01
        assert schedule.idle_energy_pj > 0.0

    def test_edp_product(self):
        schedule = self._populated()
        assert schedule.edp == pytest.approx(
            schedule.total_energy_pj * 1e-12 * schedule.makespan_seconds)

    def test_entries_for_instance_sorted_by_index(self):
        chain = self._populated().entries_for_instance("m#0")
        assert [entry.layer_index for entry in chain] == [0, 1]

    def test_summary_keys(self):
        assert set(self._populated().summary()) == {
            "latency_s", "energy_mj", "edp_js", "num_layers", "load_imbalance"}

    def test_describe_contains_counts(self):
        assert "3 layer executions" in self._populated().describe()

    def test_unused_sub_accelerator_summary_is_strict_json(self):
        # One sub-accelerator never runs a layer: load_imbalance() is inf, but
        # summary() must stay finite so strict-JSON dumps don't blow up.
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        assert schedule.load_imbalance() == float("inf")
        summary = schedule.summary()
        assert summary["load_imbalance"] == LOAD_IMBALANCE_UNUSED_SENTINEL
        parsed = json.loads(json.dumps(summary, allow_nan=False))
        assert parsed["load_imbalance"] == LOAD_IMBALANCE_UNUSED_SENTINEL

    def test_timeline_cache_invalidated_by_add(self):
        schedule = self._populated()
        assert schedule.busy_cycles("a1") == 200
        assert [e.layer.name for e in schedule.entries_for("a1")] == ["l1", "l0"]
        schedule.add(_entry("l1", "n#0", 1, "a1", 300, 360))
        assert schedule.busy_cycles("a1") == 260
        assert len(schedule.entries_for("a1")) == 3
        # The untouched sub-accelerator's figures stay correct too.
        assert schedule.busy_cycles("a0") == 100

    def test_timeline_cache_survives_direct_entries_mutation(self):
        schedule = self._populated()
        assert schedule.busy_cycles("a0") == 100
        # Appending to .entries directly (bypassing add) must not serve stale
        # accounting.
        schedule.entries.append(_entry("x", "m#0", 2, "a0", 300, 450))
        assert schedule.busy_cycles("a0") == 250

    def test_add_after_direct_mutation_does_not_mask_invalidation(self):
        schedule = self._populated()
        assert schedule.busy_cycles("a0") == 100
        # Direct append on a0, then add() on a1: the a0 figures must still be
        # refreshed even though add() only invalidates a1 itself.
        schedule.entries.append(_entry("x", "m#0", 2, "a0", 300, 450))
        schedule.add(_entry("y", "n#0", 1, "a1", 300, 360))
        assert schedule.busy_cycles("a0") == 250
        assert schedule.busy_cycles("a1") == 260

    def test_entries_for_returns_independent_list(self):
        schedule = self._populated()
        timeline = schedule.entries_for("a1")
        timeline.clear()
        assert len(schedule.entries_for("a1")) == 2


class TestValidation:
    def test_valid_schedule_passes(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        schedule.add(_entry("l1", "m#0", 1, "a0", 100, 200))
        schedule.validate(expected_layers={"m#0": 2})

    def test_overlap_on_same_sub_accelerator_rejected(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        schedule.add(_entry("l0", "n#0", 0, "a0", 50, 150))
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_dependence_violation_rejected(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        schedule.add(_entry("l1", "m#0", 1, "a1", 50, 150))
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_duplicate_layer_index_rejected(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        schedule.add(_entry("l0b", "m#0", 0, "a1", 100, 200))
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_non_contiguous_indices_rejected(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        schedule.add(_entry("l2", "m#0", 2, "a0", 100, 200))
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_missing_layers_detected(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        with pytest.raises(SchedulingError):
            schedule.validate(expected_layers={"m#0": 2})

    def test_unknown_instance_detected(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "ghost#0", 0, "a0", 0, 100))
        with pytest.raises(SchedulingError):
            schedule.validate(expected_layers={"m#0": 1})

    def test_parallel_execution_on_different_sub_accelerators_allowed(self):
        schedule = _empty_schedule()
        schedule.add(_entry("l0", "m#0", 0, "a0", 0, 100))
        schedule.add(_entry("l0", "n#0", 0, "a1", 0, 80))
        schedule.validate(expected_layers={"m#0": 1, "n#0": 1})
