"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis.pareto import dominates, pareto_front
from repro.core.partitioner import compositions
from repro.dataflow.mapping import build_mapping
from repro.dataflow.styles import ALL_STYLES
from repro.maestro.reuse import analyse_reuse
from repro.models.layer import conv2d, dwconv, fc
from repro.units import mib


# ---------------------------------------------------------------------------
# Layer strategies
# ---------------------------------------------------------------------------

conv_layers = st.builds(
    lambda k, c, y, r, stride: conv2d("h", k=k, c=c, y=max(y, r + stride), x=max(y, r + stride),
                                      r=r, s=r, stride=stride),
    k=st.integers(min_value=1, max_value=512),
    c=st.integers(min_value=1, max_value=512),
    y=st.integers(min_value=4, max_value=128),
    r=st.sampled_from([1, 3, 5, 7]),
    stride=st.sampled_from([1, 2]),
)

dw_layers = st.builds(
    lambda c, y, r: dwconv("hd", c=c, y=max(y, r + 1), x=max(y, r + 1), r=r, s=r),
    c=st.integers(min_value=1, max_value=512),
    y=st.integers(min_value=4, max_value=96),
    r=st.sampled_from([3, 5]),
)

fc_layers = st.builds(
    lambda k, c: fc("hf", k=k, c=c),
    k=st.integers(min_value=1, max_value=4096),
    c=st.integers(min_value=1, max_value=4096),
)

any_layer = st.one_of(conv_layers, dw_layers, fc_layers)

styles = st.sampled_from(ALL_STYLES)
pe_counts = st.sampled_from([1, 16, 64, 256, 1024, 4096])


# ---------------------------------------------------------------------------
# Layer invariants
# ---------------------------------------------------------------------------

@given(layer=any_layer)
@settings(max_examples=80, deadline=None)
def test_layer_macs_and_tensors_positive(layer):
    assert layer.macs > 0
    assert layer.input_elements > 0
    assert layer.output_elements > 0
    assert layer.filter_elements > 0


@given(layer=conv_layers)
@settings(max_examples=80, deadline=None)
def test_conv_macs_formula(layer):
    expected = layer.k * layer.c * layer.out_y * layer.out_x * layer.r * layer.s
    assert layer.macs == expected


# ---------------------------------------------------------------------------
# Mapping invariants
# ---------------------------------------------------------------------------

@given(layer=any_layer, style=styles, pes=pe_counts)
@settings(max_examples=120, deadline=None)
def test_mapping_invariants(layer, style, pes):
    mapping = build_mapping(layer, style, pes)
    # Spatial unrolling never exceeds the PE budget.
    assert mapping.active_pes <= pes
    # All MACs are covered by the sequential steps.
    assert mapping.compute_steps * mapping.active_pes >= layer.macs
    # Utilisation is a proper fraction.
    assert 0.0 < mapping.utilisation <= 1.0 + 1e-9
    # Unrolling factors never exceed the structural caps.
    for dim, factor in mapping.spatial_factors.items():
        cap = style.unroll_cap(dim)
        if cap is not None:
            assert factor <= cap


@given(layer=any_layer, style=styles)
@settings(max_examples=60, deadline=None)
def test_more_pes_never_increase_steps(layer, style):
    small = build_mapping(layer, style, 64)
    large = build_mapping(layer, style, 1024)
    assert large.compute_steps <= small.compute_steps


# ---------------------------------------------------------------------------
# Reuse invariants
# ---------------------------------------------------------------------------

@given(layer=any_layer, style=styles, pes=pe_counts,
       buffer_mib=st.sampled_from([0.25, 1, 4, 64]))
@settings(max_examples=120, deadline=None)
def test_reuse_invariants(layer, style, pes, buffer_mib):
    mapping = build_mapping(layer, style, pes)
    reuse = analyse_reuse(mapping, mib(buffer_mib))
    # Register-file traffic is per-MAC.
    assert reuse.rf_accesses == 4 * layer.macs
    # Every tensor is moved at least once at every level.
    assert reuse.local_filter_fills >= layer.filter_elements
    assert reuse.local_input_fills >= layer.input_elements
    assert reuse.local_output_accesses >= layer.output_elements
    assert reuse.noc_tile_elements >= layer.total_elements
    assert reuse.dram_accesses >= layer.total_elements
    # Off-chip traffic never exceeds the NoC tile traffic by construction
    # of the refetch model (both are bounded by 8x/64x the tensor sizes).
    assert reuse.dram_bytes <= 64 * layer.total_elements * 2


@given(layer=any_layer, style=styles, pes=pe_counts)
@settings(max_examples=60, deadline=None)
def test_larger_buffer_never_increases_traffic(layer, style, pes):
    mapping = build_mapping(layer, style, pes)
    small = analyse_reuse(mapping, mib(0.5))
    large = analyse_reuse(mapping, mib(128))
    assert large.noc_tile_elements <= small.noc_tile_elements
    assert large.dram_accesses <= small.dram_accesses


# ---------------------------------------------------------------------------
# Partition compositions
# ---------------------------------------------------------------------------

@given(units=st.integers(min_value=2, max_value=24),
       parts=st.integers(min_value=1, max_value=3),
       step=st.sampled_from([1, 2, 4]))
@settings(max_examples=60, deadline=None)
def test_compositions_cover_total_exactly(units, parts, step):
    total = units * step
    if units < parts:
        return
    for split in compositions(total, parts, step):
        assert sum(split) == total
        assert all(part >= step for part in split)
        assert all(part % step == 0 for part in split)


# ---------------------------------------------------------------------------
# Pareto-front invariants
# ---------------------------------------------------------------------------

point_lists = st.lists(
    st.tuples(st.floats(min_value=0.1, max_value=100.0),
              st.floats(min_value=0.1, max_value=100.0)),
    min_size=1, max_size=30,
)


@given(points=point_lists)
@settings(max_examples=100, deadline=None)
def test_pareto_front_members_are_mutually_non_dominating(points):
    front = pareto_front(points)
    assert front, "a non-empty point set always has a non-empty Pareto front"
    for a in front:
        for b in front:
            assert not dominates(a, b) or a == b


@given(points=point_lists)
@settings(max_examples=100, deadline=None)
def test_every_point_is_dominated_by_or_on_the_front(points):
    front = pareto_front(points)
    for point in points:
        assert point in front or any(dominates(member, point) for member in front)
