"""Tests for the analysis helpers: metrics, Pareto fronts, and sweeps."""

import pytest

from repro.accel.classes import accelerator_class
from repro.analysis.metrics import (
    deadline_miss_rate,
    edp,
    gain_table,
    geometric_mean,
    imbalance,
    percent_improvement,
    percent_overhead,
    percentile,
    summarise_improvements,
)
from repro.analysis.pareto import dominates, is_pareto_optimal, pareto_front
from repro.analysis.sweeps import pe_partition_sweep
from repro.maestro.hardware import ChipConfig
from repro.units import gbps, mib


class TestMetrics:
    def test_edp(self):
        assert edp(2.0, 3.0) == pytest.approx(6.0)

    def test_edp_rejects_negative(self):
        with pytest.raises(ValueError):
            edp(-1.0, 1.0)

    def test_percent_improvement_positive_when_lower(self):
        assert percent_improvement(10.0, 5.0) == pytest.approx(50.0)

    def test_percent_improvement_negative_when_higher(self):
        assert percent_improvement(10.0, 12.0) == pytest.approx(-20.0)

    def test_percent_improvement_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            percent_improvement(0.0, 1.0)

    def test_percent_overhead(self):
        assert percent_overhead(10.0, 12.0) == pytest.approx(20.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_gain_table_shape(self):
        baselines = {
            "fda": {"latency_s": 2.0, "energy_mj": 100.0, "edp_js": 200.0},
            "rda": {"latency_s": 1.0, "energy_mj": 150.0, "edp_js": 150.0},
        }
        candidate = {"latency_s": 1.0, "energy_mj": 90.0, "edp_js": 90.0}
        table = gain_table(baselines, candidate)
        assert table["fda"]["latency_s"] == pytest.approx(50.0)
        assert table["rda"]["energy_mj"] == pytest.approx(40.0)

    def test_summarise_improvements(self):
        stats = summarise_improvements([10.0, 20.0, 30.0])
        assert stats["mean"] == pytest.approx(20.0)
        assert stats["min"] == 10.0 and stats["max"] == 30.0

    def test_summarise_improvements_empty(self):
        with pytest.raises(ValueError):
            summarise_improvements([])


class TestPercentile:
    def test_median_of_odd_sequence(self):
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 50.0) == pytest.approx(3.0)

    def test_interpolates_between_order_statistics(self):
        # rank = (4 - 1) * 0.5 = 1.5 -> halfway between 2.0 and 3.0.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_unsorted_input_is_sorted_internally(self):
        shuffled = [5.0, 1.0, 4.0, 2.0, 3.0]
        assert percentile(shuffled, 50.0) == pytest.approx(3.0)
        assert percentile(shuffled, 0.0) == pytest.approx(1.0)
        assert percentile(shuffled, 100.0) == pytest.approx(5.0)

    def test_single_sample_returned_for_every_q(self):
        for q in (0.0, 37.5, 50.0, 99.0, 100.0):
            assert percentile([42.0], q) == pytest.approx(42.0)

    def test_single_sample_is_returned_exactly(self):
        """Pin the single-element contract precisely: the sample itself comes
        back (bitwise — no interpolation arithmetic touches it), for every
        ``q`` including both boundaries.  Fleet and stream reports rely on
        this for one-frame streams, where any rounding would perturb golden
        comparisons."""
        sample = 0.1 + 0.2  # an unrepresentable-looking float, kept verbatim
        for q in (0.0, 1e-9, 50.0, 100.0):
            assert percentile([sample], q) == sample
        assert percentile(iter([sample]), 99.0) == sample

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            percentile([1.0], 100.5)

    def test_p99_tracks_the_tail(self):
        values = [1.0] * 99 + [100.0]
        assert percentile(values, 50.0) == pytest.approx(1.0)
        assert percentile(values, 99.0) > 1.0


class TestDeadlineMissRate:
    def test_scalar_deadline(self):
        assert deadline_miss_rate([1.0, 2.0, 3.0, 4.0], 2.5) == pytest.approx(0.5)

    def test_per_sample_deadlines(self):
        rate = deadline_miss_rate([1.0, 2.0, 3.0], [2.0, 1.5, 10.0])
        assert rate == pytest.approx(1.0 / 3.0)

    def test_exactly_on_deadline_is_not_a_miss(self):
        assert deadline_miss_rate([2.0], 2.0) == 0.0

    def test_empty_input_has_no_misses(self):
        assert deadline_miss_rate([], 1.0) == 0.0
        assert deadline_miss_rate([], []) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            deadline_miss_rate([1.0, 2.0], [1.0])

    def test_empty_deadline_map_with_latencies_rejected(self):
        """Pin the empty-deadline-sequence contract: silently treating it as
        "no deadlines" would hide a caller bug (frames exist but none were
        given a bound), so it must be the length-mismatch error — with the
        counts in the message."""
        with pytest.raises(ValueError, match="2 latencies but 0 deadlines"):
            deadline_miss_rate([1.0, 2.0], [])

    def test_empty_latencies_ignore_deadline_shape(self):
        """The dual edge: zero frames miss nothing, whatever the deadline
        argument looks like (scalar, empty, even a generator)."""
        assert deadline_miss_rate([], 0.0) == 0.0
        assert deadline_miss_rate([], iter([])) == 0.0


class TestImbalance:
    def test_ratio_of_extremes(self):
        assert imbalance([2.0, 4.0, 8.0]) == pytest.approx(4.0)

    def test_balanced_input_is_one(self):
        assert imbalance([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_idle_member_is_infinite(self):
        assert imbalance([0.0, 5.0]) == float("inf")

    def test_all_idle_is_balanced(self):
        assert imbalance([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            imbalance([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            imbalance([1.0, -0.5])

    def test_accepts_generators(self):
        assert imbalance(x for x in (1.0, 2.0)) == pytest.approx(2.0)


class TestPareto:
    POINTS = [(1.0, 10.0), (2.0, 5.0), (3.0, 4.0), (2.5, 6.0), (4.0, 4.5)]

    def test_dominates(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 1.0))
        assert not dominates((1.0, 2.0), (2.0, 1.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_pareto_front_contents(self):
        front = pareto_front(self.POINTS)
        assert (1.0, 10.0) in front
        assert (2.0, 5.0) in front
        assert (3.0, 4.0) in front
        assert (2.5, 6.0) not in front
        assert (4.0, 4.5) not in front

    def test_pareto_front_sorted_by_latency(self):
        front = pareto_front(self.POINTS)
        latencies = [p[0] for p in front]
        assert latencies == sorted(latencies)

    def test_is_pareto_optimal(self):
        assert is_pareto_optimal((1.0, 10.0), self.POINTS)
        assert not is_pareto_optimal((2.5, 6.0), self.POINTS)

    def test_works_with_attribute_objects(self):
        class Point:
            def __init__(self, latency_s, energy_mj):
                self.latency_s = latency_s
                self.energy_mj = energy_mj

        points = [Point(1, 3), Point(2, 1), Point(3, 3)]
        front = pareto_front(points)
        assert points[0] in front and points[1] in front and points[2] not in front


class TestPartitionSweep:
    def test_sweep_points_cover_the_chip(self, cost_model, small_workload, tiny_chip):
        points = pe_partition_sweep(small_workload, tiny_chip, steps=4,
                                    cost_model=cost_model)
        assert len(points) == 3
        for point in points:
            assert sum(point.pe_partition) == tiny_chip.num_pes
            assert point.edp > 0

    def test_sweep_is_monotone_in_neither_direction(self, cost_model, small_workload,
                                                    tiny_chip):
        # The Fig. 6 curve is U-shaped: extreme partitions should not be the best.
        points = pe_partition_sweep(small_workload, tiny_chip, steps=8,
                                    cost_model=cost_model)
        best = min(points, key=lambda p: p.edp)
        assert best.pe_partition[0] not in (0, tiny_chip.num_pes)
