"""Tests for accelerator classes, designs, and builders (Table III / Table IV)."""

import pytest

from repro.accel.builders import (
    enumerate_fdas,
    enumerate_smfdas,
    hda_style_combinations,
    make_fda,
    make_hda,
    make_rda,
    make_smfda,
)
from repro.accel.classes import ACCELERATOR_CLASSES, CLOUD, EDGE, MOBILE, accelerator_class
from repro.accel.design import AcceleratorDesign, AcceleratorKind
from repro.dataflow.styles import ALL_STYLES, EYERISS, NVDLA, SHIDIANNAO
from repro.exceptions import HardwareConfigError, PartitionError
from repro.units import gbps, mib


class TestAcceleratorClasses:
    def test_table_iv_resources(self):
        assert EDGE.num_pes == 1024 and EDGE.global_buffer_bytes == mib(4)
        assert MOBILE.num_pes == 4096 and MOBILE.global_buffer_bytes == mib(8)
        assert CLOUD.num_pes == 16384 and CLOUD.global_buffer_bytes == mib(16)

    def test_table_iv_bandwidths(self):
        assert EDGE.noc_bandwidth_bytes_per_s == pytest.approx(gbps(16))
        assert MOBILE.noc_bandwidth_bytes_per_s == pytest.approx(gbps(64))
        assert CLOUD.noc_bandwidth_bytes_per_s == pytest.approx(gbps(256))

    def test_lookup_by_name(self):
        assert accelerator_class("edge") is EDGE
        assert accelerator_class("CLOUD") is CLOUD

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError):
            accelerator_class("datacenter")

    def test_registry_has_three_classes(self):
        assert set(ACCELERATOR_CLASSES) == {"edge", "mobile", "cloud"}


class TestFdaAndRda:
    def test_fda_is_monolithic(self):
        design = make_fda(EDGE, NVDLA)
        assert design.kind is AcceleratorKind.FDA
        assert design.is_monolithic
        assert design.sub_accelerators[0].num_pes == EDGE.num_pes

    def test_fda_dataflow_names(self):
        assert make_fda(EDGE, SHIDIANNAO).dataflow_names == ["shidiannao"]

    def test_rda_is_reconfigurable(self):
        design = make_rda(EDGE)
        assert design.kind is AcceleratorKind.RDA
        assert design.sub_accelerators[0].is_reconfigurable
        assert design.dataflow_names == ["reconfigurable"]

    def test_enumerate_fdas_one_per_style(self):
        designs = enumerate_fdas(MOBILE)
        assert len(designs) == len(ALL_STYLES)
        assert {d.dataflow_names[0] for d in designs} == {s.name for s in ALL_STYLES}


class TestSmFda:
    def test_even_partition(self):
        design = make_smfda(EDGE, NVDLA, num_sub_accelerators=2)
        assert design.kind is AcceleratorKind.SM_FDA
        assert design.pe_partition == (512, 512)
        assert design.dataflow_names == ["nvdla", "nvdla"]

    def test_bandwidth_split_evenly(self):
        design = make_smfda(MOBILE, SHIDIANNAO, num_sub_accelerators=2)
        assert design.bandwidth_partition_gbps[0] == pytest.approx(
            design.bandwidth_partition_gbps[1])

    def test_enumerate_smfdas(self):
        assert len(enumerate_smfdas(EDGE)) == len(ALL_STYLES)


class TestHda:
    def test_even_default_partition(self):
        design = make_hda(EDGE, [NVDLA, SHIDIANNAO])
        assert design.kind is AcceleratorKind.HDA
        assert sum(design.pe_partition) == EDGE.num_pes

    def test_explicit_partition(self):
        design = make_hda(CLOUD, [NVDLA, SHIDIANNAO],
                          pe_partition=[12032, 4352],
                          bw_partition_gbps=[128, 128])
        assert design.pe_partition == (12032, 4352)
        assert design.bandwidth_partition_gbps == pytest.approx((128.0, 128.0))

    def test_three_way_hda(self):
        design = make_hda(CLOUD, [NVDLA, SHIDIANNAO, EYERISS])
        assert design.num_sub_accelerators == 3
        assert sum(design.pe_partition) == CLOUD.num_pes

    def test_requires_two_distinct_styles(self):
        with pytest.raises(PartitionError):
            make_hda(EDGE, [NVDLA])
        with pytest.raises(PartitionError):
            make_hda(EDGE, [NVDLA, NVDLA])

    def test_partition_must_sum_to_chip_pes(self):
        with pytest.raises(PartitionError):
            make_hda(EDGE, [NVDLA, SHIDIANNAO], pe_partition=[512, 256],
                     bw_partition_gbps=[8, 8])

    def test_partition_entries_must_be_positive(self):
        with pytest.raises(PartitionError):
            make_hda(EDGE, [NVDLA, SHIDIANNAO], pe_partition=[1024, 0],
                     bw_partition_gbps=[8, 8])
        with pytest.raises(PartitionError):
            make_hda(EDGE, [NVDLA, SHIDIANNAO], pe_partition=[512, 512],
                     bw_partition_gbps=[16, 0])

    def test_partition_length_mismatch(self):
        with pytest.raises(PartitionError):
            make_hda(EDGE, [NVDLA, SHIDIANNAO], pe_partition=[512, 256, 256],
                     bw_partition_gbps=[8, 8])

    def test_sub_accelerators_see_full_global_buffer(self):
        design = make_hda(EDGE, [NVDLA, SHIDIANNAO])
        for sub in design.sub_accelerators:
            assert sub.buffer_bytes == EDGE.global_buffer_bytes

    def test_style_combinations_include_maelstrom_pair(self):
        combos = hda_style_combinations()
        names = [tuple(style.name for style in combo) for combo in combos]
        assert ("nvdla", "shidiannao") in names
        assert any(len(combo) == 3 for combo in combos)

    def test_style_combinations_without_three_way(self):
        combos = hda_style_combinations(include_three_way=False)
        assert all(len(combo) == 2 for combo in combos)


class TestDesignValidation:
    def test_design_requires_sub_accelerators(self):
        with pytest.raises(HardwareConfigError):
            AcceleratorDesign("empty", AcceleratorKind.FDA, EDGE, tuple())

    def test_fda_cannot_have_two_sub_accelerators(self):
        subs = make_hda(EDGE, [NVDLA, SHIDIANNAO]).sub_accelerators
        with pytest.raises(HardwareConfigError):
            AcceleratorDesign("bad", AcceleratorKind.FDA, EDGE, subs)

    def test_pe_sum_mismatch_rejected(self):
        sub = EDGE.monolithic(NVDLA)
        wrong_chip = CLOUD
        with pytest.raises(PartitionError):
            AcceleratorDesign("bad", AcceleratorKind.FDA, wrong_chip, (sub,))

    def test_lookup_sub_accelerator_by_name(self):
        design = make_hda(EDGE, [NVDLA, SHIDIANNAO])
        name = design.sub_accelerators[0].name
        assert design.sub_accelerator(name) is design.sub_accelerators[0]
        with pytest.raises(HardwareConfigError):
            design.sub_accelerator("missing")

    def test_describe_lists_sub_accelerators(self):
        design = make_hda(EDGE, [NVDLA, SHIDIANNAO])
        text = design.describe()
        assert "nvdla" in text and "shidiannao" in text
