"""Tests for DAG-aware dependence tracking in the scheduling stack.

Covers the Sec. III-A hard constraint done right: a layer waits only for its
*actual* producers, so independent branches of one model may overlap across
sub-accelerators, validation accepts DAG-ordered schedules while still
rejecting true producer/consumer overlaps, skip tensors stay live until their
last consumer, and the memory check defers to another ready instance before
falling back to the DRAM spill.
"""

from __future__ import annotations

import pytest

from repro.accel.builders import make_hda
from repro.core.schedule import Schedule, ScheduledLayer
from repro.core.scheduler import HeraldScheduler, _InstanceState
from repro.dataflow.styles import NVDLA, SHIDIANNAO
from repro.exceptions import SchedulingError
from repro.maestro.cost import CostModel
from repro.maestro.hardware import SubAcceleratorConfig
from repro.models.graph import ModelGraph
from repro.models.layer import conv2d, fc, pwconv
from repro.models.zoo import build_model
from repro.units import BYTES_PER_ELEMENT, gbps, mib
from repro.workloads.spec import WorkloadSpec


def _diamond_model() -> ModelGraph:
    """stem -> {branch_channel, branch_act} -> merge.

    The two branch layers are independent and prefer opposite dataflows
    (deep channels vs large activations), so a two-way NVDLA + Shi-diannao
    HDA wants to run them concurrently.
    """
    graph = ModelGraph(name="diamond")
    graph.add_layer(conv2d("stem", k=3, c=3, y=130, x=130, r=3, s=3))
    graph.add_layer(pwconv("branch_channel", k=512, c=256, y=8, x=8))
    graph.add_layer(conv2d("branch_act", k=8, c=3, y=128, x=128, r=3, s=3))
    graph.add_layer(fc("merge", k=32, c=128))
    graph.add_edge("stem", "branch_channel")
    graph.add_edge("stem", "branch_act")
    graph.add_edge("branch_channel", "merge")
    graph.add_edge("branch_act", "merge")
    return graph


@pytest.fixture(scope="module")
def diamond_workload() -> WorkloadSpec:
    return WorkloadSpec.from_models("diamond-wl", [_diamond_model()], 1)


class TestGraphIndexSets:
    def test_chain_predecessor_indices_are_degenerate(self):
        graph = ModelGraph.from_layers(
            "chain", [fc("a", k=4, c=4), fc("b", k=4, c=4), fc("c", k=4, c=4)])
        assert graph.predecessor_indices() == (
            frozenset(), frozenset({0}), frozenset({1}))
        assert graph.successor_indices() == (
            frozenset({1}), frozenset({2}), frozenset())

    def test_diamond_predecessor_indices(self):
        preds = _diamond_model().predecessor_indices()
        assert preds[0] == frozenset()
        assert preds[1] == preds[2] == frozenset({0})
        assert preds[3] == frozenset({1, 2})

    def test_index_sets_track_graph_mutation(self):
        graph = ModelGraph.from_layers(
            "mut", [fc("a", k=4, c=4), fc("b", k=4, c=4), fc("c", k=4, c=4)])
        before = graph.predecessor_indices()
        graph.add_edge("a", "c")
        after = graph.predecessor_indices()
        assert before[2] == frozenset({1})
        assert after[2] == frozenset({0, 1})

    def test_instance_dependences_are_picklable(self, diamond_workload):
        import pickle
        dependences = diamond_workload.instance_dependences()
        assert pickle.loads(pickle.dumps(dependences)) == dependences


class TestBranchOverlap:
    def test_diamond_branches_overlap_on_two_way_hda(self, cost_model,
                                                     tiny_sub_accelerators,
                                                     diamond_workload):
        scheduler = HeraldScheduler(cost_model, load_balance_factor=None)
        schedule = scheduler.schedule(diamond_workload, tiny_sub_accelerators)
        by_name = {entry.layer.name: entry for entry in schedule.entries}
        channel = by_name["branch_channel"]
        act = by_name["branch_act"]
        assert channel.sub_accelerator != act.sub_accelerator
        # True overlap in time: each branch starts before the other finishes.
        assert channel.start_cycle < act.finish_cycle
        assert act.start_cycle < channel.finish_cycle
        # Both wait for the stem, the merge waits for both.
        stem = by_name["stem"]
        merge = by_name["merge"]
        assert min(channel.start_cycle, act.start_cycle) >= stem.finish_cycle
        assert merge.start_cycle >= max(channel.finish_cycle, act.finish_cycle)

    def test_diamond_beats_chain_serialization(self, cost_model,
                                               tiny_sub_accelerators,
                                               diamond_workload):
        # The DAG makespan must beat executing the same assignment as a chain.
        schedule = HeraldScheduler(cost_model, load_balance_factor=None).schedule(
            diamond_workload, tiny_sub_accelerators)
        serialized = sum(entry.duration_cycles for entry in schedule.entries)
        assert schedule.makespan_cycles < serialized

    def test_replay_without_post_processing_is_dag_aware(self, cost_model,
                                                         tiny_sub_accelerators,
                                                         diamond_workload):
        scheduler = HeraldScheduler(cost_model, load_balance_factor=None,
                                    enable_post_processing=False)
        schedule = scheduler.schedule(diamond_workload, tiny_sub_accelerators)
        by_name = {entry.layer.name: entry for entry in schedule.entries}
        assert (by_name["merge"].start_cycle
                >= max(by_name["branch_channel"].finish_cycle,
                       by_name["branch_act"].finish_cycle))

    def test_unet_skip_connections_schedule_validly(self, cost_model,
                                                    tiny_sub_accelerators):
        unet = build_model("unet")
        for level in range(1, 5):
            producers = [p.name for p in unet.predecessors(f"dec{level}_conv1")]
            assert f"enc{level}_conv2" in producers
        workload = WorkloadSpec.from_models("unet-wl", [unet], 1)
        schedule = HeraldScheduler(cost_model).schedule(workload,
                                                        tiny_sub_accelerators)
        # validate() ran inside schedule(); it must also pass explicitly with
        # the DAG dependence info attached.
        assert schedule.instance_predecessors["unet#0"]
        schedule.validate({"unet#0": len(unet)})


def _make_cost(layer):
    sub = SubAcceleratorConfig("acc", NVDLA, num_pes=64,
                               bandwidth_bytes_per_s=gbps(4), buffer_bytes=mib(1))
    return CostModel().layer_cost(layer, sub)


def _entry(name, index, acc, start, finish, instance="d#0"):
    layer = fc(name, k=8, c=8)
    return ScheduledLayer(layer=layer, instance_id=instance, layer_index=index,
                          sub_accelerator=acc, start_cycle=start,
                          finish_cycle=finish, cost=_make_cost(layer))


def _diamond_predecessors():
    return {"d#0": (frozenset(), frozenset({0}), frozenset({0}),
                    frozenset({1, 2}))}


class TestDagValidation:
    def _dag_schedule(self, merge_start=300.0):
        schedule = Schedule(sub_accelerator_names=("a0", "a1"), clock_hz=1e9,
                            instance_predecessors=_diamond_predecessors())
        schedule.add(_entry("stem", 0, "a0", 0, 100))
        schedule.add(_entry("b1", 1, "a0", 100, 300))
        schedule.add(_entry("b2", 2, "a1", 100, 250))
        schedule.add(_entry("merge", 3, "a1", merge_start, merge_start + 50))
        return schedule

    def test_branch_parallel_schedule_accepted(self):
        # Layer index 2 starts before index 1 finishes — illegal for a chain,
        # legal for the diamond DAG.
        self._dag_schedule().validate(expected_layers={"d#0": 4})

    def test_same_schedule_rejected_under_chain_semantics(self):
        schedule = self._dag_schedule()
        schedule.instance_predecessors = {}
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_true_producer_consumer_overlap_rejected(self):
        # merge starts at 260, before branch b1 (a true producer) ends at 300.
        with pytest.raises(SchedulingError):
            self._dag_schedule(merge_start=260.0).validate()

    def test_missing_producer_rejected(self):
        schedule = Schedule(sub_accelerator_names=("a0", "a1"), clock_hz=1e9,
                            instance_predecessors=_diamond_predecessors())
        schedule.add(_entry("stem", 0, "a0", 0, 100))
        schedule.add(_entry("merge", 3, "a1", 500, 550))
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_duplicate_layer_index_still_rejected(self):
        schedule = Schedule(sub_accelerator_names=("a0", "a1"), clock_hz=1e9,
                            instance_predecessors=_diamond_predecessors())
        schedule.add(_entry("stem", 0, "a0", 0, 100))
        schedule.add(_entry("stem2", 0, "a1", 0, 100))
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_out_of_range_layer_index_rejected(self):
        schedule = Schedule(sub_accelerator_names=("a0", "a1"), clock_hz=1e9,
                            instance_predecessors=_diamond_predecessors())
        schedule.add(_entry("ghost", 7, "a0", 0, 100))
        with pytest.raises(SchedulingError):
            schedule.validate()


class TestSkipTensorLiveness:
    def _skip_graph_state(self):
        graph = ModelGraph(name="skip")
        graph.add_layer(fc("a", k=32, c=8))
        graph.add_layer(fc("b", k=16, c=32))
        graph.add_layer(fc("c", k=8, c=48))
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("a", "c")  # skip connection
        workload = WorkloadSpec.from_models("skip-wl", [graph], 1)
        instance = workload.instances()[0]
        return graph, _InstanceState(
            instance=instance,
            layers=instance.layers_in_dependence_order(),
            predecessors=instance.predecessor_indices(),
            successors=instance.successor_indices(),
        )

    def test_skip_tensor_live_until_last_consumer(self):
        graph, state = self._skip_graph_state()
        a_bytes = graph.layer("a").output_elements * BYTES_PER_ELEMENT
        b_bytes = graph.layer("b").output_elements * BYTES_PER_ELEMENT
        state.advance()  # a scheduled
        state.advance()  # b scheduled, c outstanding
        # Both a (skip) and b are awaiting consumer c: chain accounting would
        # only have counted b.
        assert state.live_bytes() == a_bytes + b_bytes
        # Seen from c itself, both tensors are its inputs, so they are
        # excluded (the caller counts them as the layer's input bytes).
        assert state.live_bytes(exclude_consumers_of=2) == 0
        state.advance()  # c scheduled: everything retires
        assert state.live_bytes() == 0

    def test_liveness_matches_chain_behaviour_without_skips(self):
        graph = ModelGraph.from_layers(
            "plain", [fc("a", k=32, c=8), fc("b", k=16, c=32), fc("c", k=8, c=16)])
        workload = WorkloadSpec.from_models("plain-wl", [graph], 1)
        instance = workload.instances()[0]
        state = _InstanceState(
            instance=instance,
            layers=instance.layers_in_dependence_order(),
            predecessors=instance.predecessor_indices(),
            successors=instance.successor_indices(),
        )
        b_bytes = graph.layer("b").output_elements * BYTES_PER_ELEMENT
        state.advance()
        state.advance()
        assert state.live_bytes() == b_bytes  # only the most recent output
        state.advance()
        assert state.live_bytes() == 0  # exhausted: nothing awaits a consumer


class TestMemoryDeferral:
    def _two_speed_workload(self):
        big = ModelGraph.from_layers("bignet", [
            conv2d(f"big{i}", k=32, c=32, y=34, x=34, r=3, s=3) for i in range(3)
        ])
        tiny = ModelGraph.from_layers("tinynet", [
            fc(f"tiny{i}", k=16, c=16) for i in range(3)
        ])
        return WorkloadSpec.from_models("two-speed", [big, tiny], 1)

    def test_deferral_runs_fitting_instance_first(self, cost_model,
                                                  tiny_sub_accelerators):
        workload = self._two_speed_workload()
        scheduler = HeraldScheduler(cost_model, memory_limit_bytes=64 * 1024,
                                    enable_post_processing=False)
        schedule = scheduler.schedule(workload, tiny_sub_accelerators)
        ordered = sorted(schedule.entries,
                         key=lambda e: (e.start_cycle, e.finish_cycle))
        first_big = next(i for i, e in enumerate(ordered)
                         if e.instance_id == "bignet#0")
        last_tiny = max(i for i, e in enumerate(ordered)
                        if e.instance_id == "tinynet#0")
        # Every tiny layer fits the buffer budget, so deferral schedules the
        # whole tiny instance before spilling the first big layer.
        assert last_tiny < first_big
        # The big layers never fit: each one is a counted DRAM-spill fallback.
        assert scheduler.last_memory_violations == 3

    def test_no_deferral_without_memory_pressure(self, cost_model,
                                                 tiny_sub_accelerators):
        workload = self._two_speed_workload()
        scheduler = HeraldScheduler(cost_model, memory_limit_bytes=mib(512),
                                    enable_post_processing=False)
        schedule = scheduler.schedule(workload, tiny_sub_accelerators)
        assert scheduler.last_memory_violations == 0
        ordered = sorted(schedule.entries,
                         key=lambda e: (e.start_cycle, e.finish_cycle))
        # Breadth ordering interleaves the two instances when nothing defers.
        assert ordered[0].instance_id != ordered[1].instance_id


class TestSerialPoolParityOnDag:
    def test_backends_agree_on_dag_workload(self, tiny_chip):
        from repro.exec import EvaluationTask, ProcessPoolBackend, SerialBackend

        workload = WorkloadSpec.from_models(
            "dag-parity", [_diamond_model(), build_model("unet")], [2, 1])
        designs = [make_hda(tiny_chip, [NVDLA, SHIDIANNAO]),
                   make_hda(tiny_chip, [SHIDIANNAO, NVDLA])]
        tasks = [EvaluationTask(i, design, workload)
                 for i, design in enumerate(designs)]
        serial = SerialBackend().run(tasks)
        pooled = ProcessPoolBackend(jobs=2).run(tasks)
        assert len(serial) == len(pooled) == len(tasks)
        for ours, theirs in zip(pooled, serial):
            assert ours.latency_s == theirs.latency_s
            assert ours.energy_mj == theirs.energy_mj
            assert ours.edp == theirs.edp
            for mine, other in zip(ours.schedule.entries, theirs.schedule.entries):
                assert mine.layer.name == other.layer.name
                assert mine.sub_accelerator == other.sub_accelerator
                assert mine.start_cycle == other.start_cycle
