"""Unit tests for traffic generation, fault specs, and their helper metrics.

The hypothesis suites pin the closed-loop *behaviour*; this module pins the
building blocks directly:

* the generated arrival processes land in their textbook burstiness regimes
  (inter-arrival CV ~ 0 for periodic, ~ 1 for Poisson, > 1 for MMPP) and
  expose the expected structure (churn's periodic session combs, the
  diurnal rate swing);
* :class:`TrafficSpec` validation, deadlines, and workload compilation;
* :class:`FaultSpec` time-indexing semantics (death, overlapping slowdown
  windows, transition instants) and the CLI clause grammar;
* the metrics helpers (:func:`coefficient_of_variation`,
  :func:`interval_counts`) and :meth:`FrameTrace.merged` the generators
  lean on.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import coefficient_of_variation, interval_counts
from repro.exceptions import WorkloadError
from repro.serve import (
    TRAFFIC_KINDS,
    ChipFailure,
    FaultSpec,
    FrameTrace,
    SlowdownWindow,
    StreamSpec,
    TrafficSpec,
    merge_fault_specs,
    parse_fault_clause,
    traffic_suite,
    traffic_workload,
)


def _gaps(releases):
    return [later - earlier for earlier, later in zip(releases, releases[1:])]


# ---------------------------------------------------------------------------
# Arrival-process regimes
# ---------------------------------------------------------------------------
class TestTrafficRegimes:
    """Each process lands in its textbook inter-arrival CV regime.

    The traces are deterministic, so these are exact assertions about the
    specific seeded draw, with thresholds loose enough to be seed-robust
    (checked across several seeds).
    """

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_poisson_gap_cv_is_near_one(self, seed):
        spec = TrafficSpec(kind="poisson", model_name="m", rate_fps=100.0,
                           frames=512, seed=seed)
        cv = coefficient_of_variation(_gaps(spec.release_times_s()))
        assert 0.8 < cv < 1.2

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_bursty_gap_cv_exceeds_poisson(self, seed):
        spec = TrafficSpec(kind="bursty", model_name="m", rate_fps=100.0,
                           frames=512, seed=seed)
        cv = coefficient_of_variation(_gaps(spec.release_times_s()))
        assert cv > 1.2

    def test_periodic_stream_cv_is_zero(self):
        # The baseline the stochastic regimes are judged against.
        releases = StreamSpec(model_name="m", fps=100.0,
                              frames=64).release_times_s()
        assert coefficient_of_variation(_gaps(releases)) \
            == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_diurnal_rate_swings_between_peak_and_trough(self, seed):
        # With amplitude 0.8 the instantaneous rate swings 1.8x/0.2x the
        # mean, so per-sinusoid-period bucket counts must spread well beyond
        # what a flat Poisson would produce.
        spec = TrafficSpec(kind="diurnal", model_name="m", rate_fps=100.0,
                           frames=512, seed=seed, amplitude=0.8,
                           period_frames=128.0)
        releases = spec.release_times_s()
        quarter = spec.period_frames * spec.period_s / 4.0
        counts = interval_counts(releases, quarter, releases[-1])
        assert max(counts) >= 2 * max(1, min(counts))

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_churn_contains_periodic_session_combs(self, seed):
        # Every session contributes session_frames arrivals exactly one
        # nominal period apart, so the session comb must appear among gaps.
        spec = TrafficSpec(kind="churn", model_name="m", rate_fps=100.0,
                           frames=64, seed=seed, session_frames=8)
        releases = spec.release_times_s()
        period_gaps = sum(1 for gap in _gaps(releases)
                          if gap == pytest.approx(spec.period_s))
        assert period_gaps >= spec.session_frames

    def test_all_kinds_sorted_exact_count_and_phased(self):
        for kind in TRAFFIC_KINDS:
            spec = TrafficSpec(kind=kind, model_name="m", rate_fps=250.0,
                               frames=33, seed=3, phase_s=0.125)
            releases = spec.release_times_s()
            assert len(releases) == 33
            assert list(releases) == sorted(releases)
            assert min(releases) >= 0.125


# ---------------------------------------------------------------------------
# TrafficSpec surface
# ---------------------------------------------------------------------------
class TestTrafficSpec:
    @pytest.mark.parametrize("kwargs", [
        dict(kind="uniform"),
        dict(rate_fps=0.0),
        dict(frames=0),
        dict(phase_s=-1.0),
        dict(deadline_s=0.0),
        dict(calm_factor=0.0),
        dict(calm_factor=5.0),          # calm must stay below burst
        dict(burst_dwell_frames=0.0),
        dict(amplitude=1.0),
        dict(amplitude=-0.1),
        dict(period_frames=0.0),
        dict(session_frames=0),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        base = dict(kind="poisson", model_name="m", rate_fps=30.0, frames=4)
        base.update(kwargs)
        with pytest.raises(WorkloadError):
            TrafficSpec(**base)

    def test_deadline_defaults_to_one_mean_period(self):
        spec = TrafficSpec(kind="poisson", model_name="m", rate_fps=50.0,
                           frames=4)
        assert spec.effective_deadline_s == pytest.approx(0.02)
        explicit = TrafficSpec(kind="poisson", model_name="m", rate_fps=50.0,
                               frames=4, deadline_s=0.005)
        assert explicit.effective_deadline_s == 0.005

    def test_to_trace_carries_the_spec_faithfully(self):
        spec = TrafficSpec(kind="bursty", model_name="m", rate_fps=60.0,
                           frames=12, seed=9)
        trace = spec.to_trace()
        assert isinstance(trace, FrameTrace)
        assert trace.releases_s == spec.release_times_s()
        assert trace.deadline_s == spec.effective_deadline_s
        assert trace.fps == 60.0 and trace.frames == 12

    def test_describe_names_the_process(self):
        spec = TrafficSpec(kind="diurnal", model_name="m", rate_fps=30.0,
                           frames=4)
        assert "diurnal" in spec.describe()
        assert "30" in spec.describe()


class TestTrafficWorkloads:
    def test_traffic_suite_mirrors_the_periodic_suite_shape(self):
        workload = traffic_suite("arvr-a", "poisson", frames=4, seed=1)
        assert workload.name == "arvr-a-poisson"
        assert all(isinstance(stream, FrameTrace)
                   for stream in workload.streams)
        # Per suite entry: batches x target FPS rate, frames x batches
        # arrivals, deadline one single-source period — cross-check one
        # stream against the suite definition via its nominal fps ratio.
        for stream in workload.streams:
            entry_frames = stream.frames
            assert entry_frames % 4 == 0
            batches = entry_frames // 4
            assert stream.fps == pytest.approx(
                batches / stream.deadline_s)

    def test_traffic_suite_forwards_shape_kwargs(self):
        calm = traffic_suite("arvr-a", "bursty", frames=2, seed=5)
        wild = traffic_suite("arvr-a", "bursty", frames=2, seed=5,
                             burst_factor=16.0, calm_factor=0.05)
        assert [s.releases_s for s in calm.streams] \
            != [s.releases_s for s in wild.streams]

    @pytest.mark.parametrize("kwargs", [dict(frames=0), dict(fps_scale=0.0)])
    def test_traffic_suite_validates_arguments(self, kwargs):
        with pytest.raises(WorkloadError):
            traffic_suite("arvr-a", "poisson", **kwargs)

    def test_traffic_workload_compiles_explicit_specs(self):
        from repro.models.graph import ModelGraph
        from repro.models.layer import fc
        graph = ModelGraph.from_layers("tiny", [fc("l0", k=8, c=8)])
        spec = TrafficSpec(kind="poisson", model_name="tiny", rate_fps=100.0,
                           frames=3, seed=2)
        workload = traffic_workload("mixed", [spec], {"tiny": graph})
        assert workload.name == "mixed"
        assert workload.streams[0].releases_s == spec.release_times_s()
        assert workload.total_frames == 3


# ---------------------------------------------------------------------------
# FrameTrace.merged (the churn compiler's folding primitive)
# ---------------------------------------------------------------------------
class TestFrameTraceMerged:
    def test_merges_sorted_and_sums_rates(self):
        first = FrameTrace(model_name="m", releases_s=(0.0, 0.3),
                           deadline_s=0.1, fps=10.0)
        second = FrameTrace(model_name="m", releases_s=(0.1, 0.2),
                            deadline_s=0.1, fps=5.0)
        merged = FrameTrace.merged([first, second])
        assert merged.releases_s == (0.0, 0.1, 0.2, 0.3)
        assert merged.fps == 15.0 and merged.deadline_s == 0.1

    def test_rejects_empty_mixed_models_and_mixed_deadlines(self):
        trace = FrameTrace(model_name="m", releases_s=(0.0,), deadline_s=0.1,
                           fps=1.0)
        with pytest.raises(WorkloadError, match="empty"):
            FrameTrace.merged([])
        with pytest.raises(WorkloadError, match="one model"):
            FrameTrace.merged([trace, FrameTrace(
                model_name="other", releases_s=(0.0,), deadline_s=0.1,
                fps=1.0)])
        with pytest.raises(WorkloadError, match="one deadline"):
            FrameTrace.merged([trace, FrameTrace(
                model_name="m", releases_s=(0.0,), deadline_s=0.2, fps=1.0)])


# ---------------------------------------------------------------------------
# Fault specs
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_death_indexing(self):
        spec = FaultSpec(failures=(ChipFailure(1, 0.5),))
        assert spec.death_s(1) == 0.5 and spec.death_s(0) is None
        assert spec.alive(1, 0.499) and not spec.alive(1, 0.5)
        assert spec.alive(0, 1e9)

    def test_overlapping_slowdowns_take_the_worst_factor(self):
        spec = FaultSpec(slowdowns=(
            SlowdownWindow(0, 0.0, 1.0, 2.0),
            SlowdownWindow(0, 0.5, 1.5, 4.0),
            SlowdownWindow(1, 0.0, 9.0, 8.0),
        ))
        assert spec.speed_factor(0, 0.25) == 2.0
        assert spec.speed_factor(0, 0.75) == 4.0      # overlap: max wins
        assert spec.speed_factor(0, 1.25) == 4.0
        assert spec.speed_factor(0, 1.5) == 1.0       # end is exclusive
        assert spec.speed_factor(1, 5.0) == 8.0
        assert spec.transition_times(0) == [0.0, 0.5, 1.0, 1.5]
        assert spec.transition_times(2) == []

    def test_at_most_one_failure_per_chip(self):
        with pytest.raises(WorkloadError, match="more than one failure"):
            FaultSpec(failures=(ChipFailure(0, 0.1), ChipFailure(0, 0.2)))

    def test_validate_for_fleet_bounds_chip_indices(self):
        FaultSpec(failures=(ChipFailure(1, 0.1),)).validate_for_fleet(2)
        with pytest.raises(WorkloadError, match="only 2 chips"):
            FaultSpec(failures=(ChipFailure(2, 0.1),)).validate_for_fleet(2)
        with pytest.raises(WorkloadError, match="only 1 chips"):
            FaultSpec(slowdowns=(SlowdownWindow(1, 0.0, 1.0, 2.0),)) \
                .validate_for_fleet(1)

    def test_truthiness_and_describe(self):
        assert not FaultSpec()
        spec = FaultSpec(failures=(ChipFailure(0, 0.25),),
                         slowdowns=(SlowdownWindow(1, 0.0, 1.0, 3.0),))
        assert spec
        lines = spec.describe()
        assert any("dies at 0.25" in line for line in lines)
        assert any("3x slower" in line for line in lines)

    @pytest.mark.parametrize("event", [
        lambda: ChipFailure(-1, 0.0),
        lambda: ChipFailure(0, -0.1),
        lambda: ChipFailure(0, float("inf")),
        lambda: SlowdownWindow(0, -0.1, 1.0, 2.0),
        lambda: SlowdownWindow(0, 1.0, 1.0, 2.0),
        lambda: SlowdownWindow(0, 0.0, float("inf"), 2.0),
        lambda: SlowdownWindow(0, 0.0, 1.0, 1.0),
        lambda: SlowdownWindow(0, 0.0, 1.0, float("nan")),
    ])
    def test_invalid_events_rejected(self, event):
        with pytest.raises(WorkloadError):
            event()


class TestFaultClauses:
    def test_die_clause(self):
        spec = parse_fault_clause("die:1@0.002")
        assert spec.failures == (ChipFailure(1, 0.002),)
        assert spec.slowdowns == ()

    def test_slow_clause(self):
        spec = parse_fault_clause(" slow:0@0.001-0.003x2.5 ")
        assert spec.slowdowns == (SlowdownWindow(0, 0.001, 0.003, 2.5),)
        assert spec.failures == ()

    @pytest.mark.parametrize("clause", [
        "", "die", "die:", "die:1", "die:one@0.1", "die:1@never",
        "slow:0@0.001x2.5", "slow:0@0.001-0.003", "slow:0@ax-bx2",
        "kill:1@0.002", "die=1@0.002",
    ])
    def test_malformed_clauses_rejected(self, clause):
        with pytest.raises(WorkloadError, match="malformed fault clause"):
            parse_fault_clause(clause)

    def test_merge_unions_repeated_clauses(self):
        merged = merge_fault_specs([
            parse_fault_clause("die:0@0.5"),
            parse_fault_clause("slow:1@0.1-0.2x2"),
            parse_fault_clause("die:1@0.9"),
        ])
        assert {f.chip_index for f in merged.failures} == {0, 1}
        assert len(merged.slowdowns) == 1
        # The union still enforces the one-death-per-chip rule.
        with pytest.raises(WorkloadError, match="more than one failure"):
            merge_fault_specs([parse_fault_clause("die:0@0.1"),
                               parse_fault_clause("die:0@0.2")])

    def test_merge_of_nothing_is_empty(self):
        assert not merge_fault_specs([])


# ---------------------------------------------------------------------------
# Metrics helpers
# ---------------------------------------------------------------------------
class TestMetricsHelpers:
    def test_cv_known_values(self):
        assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0
        # Population form: mean 2, variance ((1)^2 + (1)^2) / 2 = 1.
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_cv_rejects_degenerate_input(self):
        with pytest.raises(ValueError, match="empty"):
            coefficient_of_variation([])
        with pytest.raises(ValueError, match="positive mean"):
            coefficient_of_variation([1.0, -1.0])

    def test_interval_counts_buckets_and_overflow(self):
        counts = interval_counts([0.0, 0.1, 0.95, 1.5, 7.0], 0.5, 2.0)
        # 4 buckets over [0, 2); the 7.0 overflow lands in the last one.
        assert counts == [2, 1, 0, 2]
        assert sum(counts) == 5

    def test_interval_counts_validates(self):
        with pytest.raises(ValueError, match="interval_s"):
            interval_counts([0.0], 0.0, 1.0)
        with pytest.raises(ValueError, match="horizon_s"):
            interval_counts([0.0], 0.5, 0.0)
        with pytest.raises(ValueError, match=">= 0"):
            interval_counts([-0.5], 0.5, 1.0)
